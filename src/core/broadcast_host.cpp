#include "core/broadcast_host.h"

#include <algorithm>

#include "core/gap_filling.h"
#include "util/assert.h"
#include "util/logging.h"

namespace rbcast::core {

BroadcastHost::BroadcastHost(util::Scheduler& scheduler,
                             net::HostEndpoint& endpoint, HostId source,
                             std::vector<HostId> all_hosts, Config config,
                             util::Rng rng, AppDeliverFn app_deliver)
    : scheduler_(scheduler),
      endpoint_(endpoint),
      source_(source),
      config_(std::move(config)),
      state_(endpoint.self(), std::move(all_hosts), source),
      rng_(rng),
      app_deliver_(std::move(app_deliver)) {
  RBCAST_CHECK_ARG(source.valid(), "invalid source id");

  attach_task_ = std::make_unique<util::PeriodicTask>(
      scheduler_, config_.attach_period, [this] { attachment_round(); });
  info_intra_task_ = std::make_unique<util::PeriodicTask>(
      scheduler_, config_.info_period_intra, [this] { info_round_intra(); });
  info_inter_task_ = std::make_unique<util::PeriodicTask>(
      scheduler_, config_.info_period_inter, [this] { info_round_inter(); });
  gapfill_neighbor_task_ = std::make_unique<util::PeriodicTask>(
      scheduler_, config_.gapfill_period_neighbor,
      [this] { gapfill_round_neighbor(); });
  gapfill_far_task_ = std::make_unique<util::PeriodicTask>(
      scheduler_, config_.gapfill_period_far, [this] { gapfill_round_far(); });
  // Maintenance must run well inside the shortest timeout it enforces.
  const util::Duration maintenance_period = std::max<util::Duration>(
      util::milliseconds(100),
      std::min(config_.parent_timeout, config_.child_timeout) / 4);
  maintenance_task_ = std::make_unique<util::PeriodicTask>(
      scheduler_, maintenance_period, [this] { maintenance_round(); });
}

BroadcastHost::BroadcastHost(transport::Transport& transport, HostId self,
                             HostId source, std::vector<HostId> all_hosts,
                             Config config, util::Rng rng,
                             AppDeliverFn app_deliver)
    : BroadcastHost(transport.scheduler(),
                    transport.attach(self,
                                     [this](const net::Delivery& d) {
                                       on_delivery(d);
                                     }),
                    source, std::move(all_hosts), std::move(config), rng,
                    std::move(app_deliver)) {
  transport_ = &transport;
}

BroadcastHost::~BroadcastHost() {
  // Detach before members die so an in-flight delivery can never reach a
  // half-destroyed host.
  if (transport_ != nullptr) transport_->detach(self());
  if (metrics_registry_ != nullptr) {
    for (const std::string& name : metrics_names_) {
      metrics_registry_->unregister(name, metrics_labels_);
    }
  }
}

void BroadcastHost::register_metrics(util::MetricsRegistry& registry,
                                     const std::string& labels) {
  RBCAST_CHECK_ARG(metrics_registry_ == nullptr,
                   "register_metrics: host already registered");
  metrics_registry_ = &registry;
  metrics_labels_ = labels;
  struct Field {
    const char* name;
    const char* help;
    std::uint64_t Counters::* member;
  };
  // The host.* metric schema (DESIGN.md §14); one labelled series per
  // host, summed across labels by MetricSampler's registry record.
  static constexpr Field kFields[] = {
      {"host.attach_attempts", "Attachment procedure runs that sent a request",
       &Counters::attach_attempts},
      {"host.attach_timeouts", "Attach handshakes that timed out",
       &Counters::attach_timeouts},
      {"host.attaches_completed", "Attach handshakes accepted",
       &Counters::attaches_completed},
      {"host.cycles_broken", "Parent cycles detected and broken",
       &Counters::cycles_broken},
      {"host.parent_timeouts", "Parents declared dead by silence",
       &Counters::parent_timeouts},
      {"host.new_max_rejected", "New maxima offered by a non-parent, rejected",
       &Counters::new_max_rejected},
      {"host.duplicates_discarded", "Data receipts already held",
       &Counters::duplicates_discarded},
      {"host.data_forwarded", "Data messages forwarded down the tree",
       &Counters::data_forwarded},
      {"host.gapfills_sent", "Gap-fill data messages sent",
       &Counters::gapfills_sent},
      {"host.deliveries", "First receipts handed to the application",
       &Counters::deliveries},
      {"host.decode_errors", "Deliveries whose payload failed wire decoding",
       &Counters::decode_errors},
      {"host.auth_rejects",
       "Data frames dropped for a missing or invalid authentication tag",
       &Counters::auth_rejects},
  };
  for (const Field& f : kFields) {
    registry.register_counter_fn(
        f.name, labels, f.help, [this, m = f.member] { return counters_.*m; });
    metrics_names_.emplace_back(f.name);
  }
  registry.register_gauge_fn(
      "host.info_count", labels, "Sequences held in INFO_i",
      [this] { return static_cast<double>(state_.info().count()); });
  metrics_names_.emplace_back("host.info_count");
  registry.register_gauge_fn(
      "host.max_seq", labels, "Sequence watermark (MAX_i)",
      [this] { return static_cast<double>(state_.info().max_seq()); });
  metrics_names_.emplace_back("host.max_seq");
  registry.register_gauge_fn(
      "host.parent", labels, "Current parent host id (-1 = NIL)", [this] {
        return static_cast<double>(parent().valid() ? parent().value : -1);
      });
  metrics_names_.emplace_back("host.parent");
  registry.register_gauge_fn(
      "host.cluster_size", labels, "Hosts currently in CLUSTER_i",
      [this] { return static_cast<double>(state_.cluster().size()); });
  metrics_names_.emplace_back("host.cluster_size");
}

void BroadcastHost::start() {
  // Jitter first activations so hosts do not act in lock-step; each task
  // starts somewhere inside its own first period.
  auto phase = [this](util::Duration period) {
    return util::phase_jitter(rng_, period);
  };
  attach_task_->start(phase(config_.attach_period));
  info_intra_task_->start(phase(config_.info_period_intra));
  info_inter_task_->start(phase(config_.info_period_inter));
  gapfill_neighbor_task_->start(phase(config_.gapfill_period_neighbor));
  gapfill_far_task_->start(phase(config_.gapfill_period_far));
  maintenance_task_->start(phase(maintenance_task_->period()));
  last_parent_heard_ = scheduler_.now();
}

Seq BroadcastHost::broadcast(std::string body) {
  RBCAST_ASSERT_MSG(is_source(), "broadcast() called on a non-source host");
  const Seq seq = next_seq_++;
  // "INFO_s ... gets updated every time a new broadcast message is
  // generated at the source."
  const bool fresh = state_.record_message(seq, std::move(body));
  RBCAST_ASSERT(fresh);
  if (config_.auth_enabled) {
    auth_tags_[seq] = make_auth_tag(config_.auth_secret, self(), seq,
                                    state_.body_of(seq)->view());
  }
  ++counters_.deliveries;
  if (observer_ != nullptr) observer_->on_delivered(self(), seq);
  if (app_deliver_) app_deliver_(seq, state_.body_of(seq)->view());
  // "Broadcast is initiated when the source sends a message to its cluster
  // neighbors" — in parent-graph terms, to its children.
  for (HostId child : state_.children()) {
    if (!state_.map(child).contains(seq)) {
      send_message(child, make_data(seq, *state_.body_of(seq),
                                    /*gap_fill=*/false));
      note_offered(child, seq);
      ++counters_.data_forwarded;
    }
  }
  return seq;
}

void BroadcastHost::on_delivery(const net::Delivery& delivery) {
  const auto* message = std::any_cast<ProtocolMessage>(&delivery.payload);
  if (message == nullptr) {
    // A payload that failed wire decoding (or a wiring bug in a test):
    // count and drop before any liveness or cluster bookkeeping — a
    // malformed datagram must not vouch for its claimed sender.
    ++counters_.decode_errors;
    return;
  }

  // Authentication gate (Config::auth_enabled): a data frame whose tag is
  // missing or does not verify is dropped here, before *any* bookkeeping —
  // a forged frame must not freshen liveness timers, flip cluster bits, or
  // smuggle in a piggybacked INFO report.
  if (config_.auth_enabled) {
    if (const auto* data = std::get_if<DataMsg>(message)) {
      if (!data->auth.has_value() ||
          !verify_auth_tag(config_.auth_secret, source_, data->seq,
                           data->body.view(), *data->auth)) {
        ++counters_.auth_rejects;
        return;
      }
    }
  }

  const HostId from = delivery.from;
  // "This set can be updated when a message (of any kind ...) is received
  // from another host j" — the cost-bit rule, unless cluster knowledge is
  // static or disabled.
  if (config_.cluster_knowledge == Config::ClusterKnowledge::kDynamic) {
    state_.update_cluster_from_cost_bit(from, delivery.expensive);
  }
  last_heard_[from] = scheduler_.now();
  if (from == state_.parent()) last_parent_heard_ = scheduler_.now();

  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, DataMsg>) {
          handle_data(from, m);
        } else if constexpr (std::is_same_v<T, InfoMsg>) {
          handle_info(from, m);
        } else if constexpr (std::is_same_v<T, AttachRequest>) {
          handle_attach_request(from, m);
        } else if constexpr (std::is_same_v<T, AttachAccept>) {
          handle_attach_accept(from, m);
        } else {
          static_assert(std::is_same_v<T, DetachNotice>);
          handle_detach(from);
        }
      },
      *message);
}

// --- data path --------------------------------------------------------

void BroadcastHost::handle_data(HostId from, const DataMsg& m) {
  // Piggybacked control state (Section 6) is processed like a standalone
  // INFO message, before any accept/discard decision.
  if (m.piggyback.has_value()) {
    handle_info(from, InfoMsg{m.piggyback->first, m.piggyback->second});
  }
  // Receiving a data message from j proves j has it.
  state_.learn_has(from, m.seq);

  if (state_.has_message(m.seq)) {
    // "A message is also discarded if the recipient host has previously
    // accepted it."
    ++counters_.duplicates_discarded;
    return;
  }
  if (is_source()) return;  // the source originates the stream; no gaps

  const bool new_max = m.seq > state_.info().max_seq();
  if (new_max && from != state_.parent()) {
    // "a host can accept a message sequence-numbered higher than any it
    // has received so far, only from its parent. If such a message arrives
    // from any other host, it is discarded."
    ++counters_.new_max_rejected;
    if (observer_ != nullptr) observer_->on_new_max_rejected(self(), from, m.seq);
    return;
  }
  // The tag verified in on_delivery() travels with the body: forwards and
  // gap fills re-attach the source's original signature.
  if (config_.auth_enabled && m.auth.has_value()) auth_tags_[m.seq] = *m.auth;
  accept_message(m.seq, m.body, new_max, from);
}

void BroadcastHost::accept_message(Seq seq, const Payload& body,
                                   bool was_new_max, HostId from) {
  const bool fresh = state_.record_message(seq, body);
  RBCAST_ASSERT(fresh);
  ++counters_.deliveries;
  if (observer_ != nullptr) {
    observer_->on_delivered(self(), seq);
    if (!was_new_max) observer_->on_gapfill_accepted(self(), from, seq);
  }
  if (app_deliver_) app_deliver_(seq, body.view());

  if (was_new_max) {
    // "upon receipt of a broadcast message, a host sends it on to all its
    // children" (skipping children known to have it already).
    for (HostId child : state_.children()) {
      if (child == from) continue;
      if (state_.map(child).contains(seq)) continue;
      send_message(child, make_data(seq, body, /*gap_fill=*/false));
      note_offered(child, seq);
      ++counters_.data_forwarded;
    }
  } else {
    // "When a host receives a gap filling message ..., it forwards it to
    // all those of its parent graph neighbors (its children and its
    // parent) that according to its MAP do not have it."
    for (HostId n : state_.neighbors()) {
      if (n == from) continue;
      if (state_.map(n).contains(seq)) continue;
      if (recent_offers(n).contains(seq)) continue;  // just offered it
      send_message(n, make_data(seq, body, /*gap_fill=*/true));
      note_offered(n, seq);
      ++counters_.gapfills_sent;
      if (observer_ != nullptr) observer_->on_gapfill_relayed(self(), n, seq);
    }
  }
}

// --- control path ---------------------------------------------------------

void BroadcastHost::handle_info(HostId from, const InfoMsg& m) {
  clear_refuted_offers(from, m.info);
  state_.learn_info(from, m.info);
  state_.learn_parent(from, m.parent);
  // Reconcile CHILDREN with the sender's own claim. This is what makes the
  // parent-pointer exchange load-bearing: a lost AttachAccept or a lost
  // DetachNotice would otherwise leave the two ends disagreeing about the
  // edge — and a host whose parent does not list it as a child can never
  // receive new maxima.
  if (m.parent == self()) {
    state_.add_child(from);
  } else {
    state_.remove_child(from);
  }
}

void BroadcastHost::handle_attach_request(HostId from,
                                          const AttachRequest& m) {
  clear_refuted_offers(from, m.info);
  state_.learn_info(from, m.info);
  state_.add_child(from);
  // The requester will set its parent pointer to us upon our accept.
  state_.learn_parent(from, self());
  send_message(from, AttachAccept{state_.info(), state_.parent()});

  // "the parent examines its new child's INFO set and forwards to the
  // child all those messages that the child is missing and that the
  // parent has."
  const SeqSet offered = recent_offers(from);
  for (Seq seq : plan_attach_backfill(state_, m.info,
                                      config_.attach_backfill_burst,
                                      &offered)) {
    send_gapfill(from, seq);
  }
}

void BroadcastHost::handle_attach_accept(HostId from, const AttachAccept& m) {
  clear_refuted_offers(from, m.info);
  state_.learn_info(from, m.info);
  state_.learn_parent(from, m.parent);

  if (pending_attach_ == from) {
    scheduler_.cancel(attach_timer_);
    attach_timer_ = util::EventId{};
    pending_attach_ = kNoHost;

    const HostId old_parent = state_.parent();
    state_.set_parent(from);
    state_.remove_child(from);  // a host cannot be both parent and child
    last_parent_heard_ = scheduler_.now();
    consecutive_attach_timeouts_ = 0;  // contact: immediate retries re-armed
    ++counters_.attaches_completed;
    if (observer_ != nullptr) observer_->on_attached(self(), from);
    RBCAST_DEBUG(self() << " attached to " << from);

    // "The old parent, if any, is also notified of the change."
    if (old_parent.valid() && old_parent != from) {
      send_message(old_parent, DetachNotice{});
    }
  } else if (from != state_.parent()) {
    // A stale accept from an abandoned attempt: `from` now believes we are
    // its child. Correct its CHILDREN set.
    send_message(from, DetachNotice{});
  }
}

void BroadcastHost::handle_detach(HostId from) { state_.remove_child(from); }

// --- periodic activities -----------------------------------------------

std::set<HostId> BroadcastHost::current_exclusions() {
  std::set<HostId> excluded;
  const util::TimePoint now = scheduler_.now();
  std::erase_if(failed_candidates_,
                [now](const auto& kv) { return kv.second <= now; });
  for (const auto& [host, until] : failed_candidates_) excluded.insert(host);
  return excluded;
}

void BroadcastHost::attachment_round() {
  // "The procedure is run at all hosts but the source."
  if (is_source()) return;
  // A handshake is in flight iff its timeout is armed.
  RBCAST_PARANOID_ASSERT(pending_attach_.valid() == attach_timer_.valid());
  if (pending_attach_.valid()) return;  // handshake already in flight

  const auto excluded = current_exclusions();
  auto decision =
      run_attachment(state_, excluded, config_.parent_switch_margin);

  if (decision.action == AttachmentDecision::Action::kBreakCycle) {
    ++counters_.cycles_broken;
    if (observer_ != nullptr) observer_->on_cycle_broken(self());
    RBCAST_INFO(self() << " breaking single-cluster cycle");
    detach_from_parent(/*notify=*/true, /*timeout=*/false);
    // "... shall detach from its parent and go through the appropriate
    // options for finding a new one" — i.e. case I, immediately.
    decision = run_attachment(state_, excluded, config_.parent_switch_margin);
  }
  if (decision.action == AttachmentDecision::Action::kAttach) {
    RBCAST_DEBUG(self() << " attachment rule " << decision.rule << " -> "
                        << decision.candidate);
    ++counters_.attempts_by_rule[decision.rule];
    begin_attach(decision.candidate, decision.rule);
  }
}

void BroadcastHost::begin_attach(HostId candidate, const std::string& rule) {
  RBCAST_ASSERT(!pending_attach_.valid());
  pending_attach_ = candidate;
  ++counters_.attach_attempts;
  if (observer_ != nullptr) {
    observer_->on_attach_requested(self(), candidate, rule);
  }
  send_message(candidate, AttachRequest{state_.info()});
  attach_timer_ = scheduler_.after(
      config_.attach_ack_timeout,
      [this, candidate] { on_attach_timeout(candidate); });
}

void BroadcastHost::on_attach_timeout(HostId candidate) {
  if (pending_attach_ != candidate) return;  // accept raced the timer
  pending_attach_ = kNoHost;
  attach_timer_ = util::EventId{};
  ++counters_.attach_timeouts;
  if (observer_ != nullptr) observer_->on_attach_timeout(self(), candidate);
  // "If the acknowledgment to this message times out, the procedure is
  // repeated to find another candidate with which the given host can
  // communicate." Exclude the silent one for a few rounds and retry now —
  // but only a bounded number of times in a row. When *every* candidate is
  // silent (total partition), back-to-back immediate retries would keep
  // cycling through the candidate list at rate 1/attach_ack_timeout
  // (exclusions expire faster than a large list is exhausted), so after
  // `attach_retry_burst` consecutive timeouts the retries fall back to the
  // periodic attachment timer.
  failed_candidates_[candidate] =
      scheduler_.now() + 4 * config_.attach_period;
  ++consecutive_attach_timeouts_;
  if (consecutive_attach_timeouts_ <= config_.attach_retry_burst) {
    attachment_round();
  }
}

void BroadcastHost::detach_from_parent(bool notify, bool timeout) {
  const HostId old_parent = state_.parent();
  state_.set_parent(kNoHost);
  if (observer_ != nullptr && old_parent.valid()) {
    observer_->on_detached(self(), old_parent, timeout);
  }
  if (notify && old_parent.valid()) {
    send_message(old_parent, DetachNotice{});
  }
}

void BroadcastHost::info_round_intra() {
  // Frequent exchange with cluster members and parent-graph neighbors.
  std::set<HostId> recipients(state_.cluster().begin(),
                              state_.cluster().end());
  for (HostId n : state_.neighbors()) recipients.insert(n);
  recipients.erase(self());
  const InfoMsg msg{state_.info(), state_.parent()};
  for (HostId j : recipients) {
    // A data message that piggybacked our INFO to j within the last round
    // already did this round's job (Section 6) — skip the standalone report.
    if (config_.piggyback_info) {
      auto it = last_piggyback_.find(j);
      if (it != last_piggyback_.end() &&
          scheduler_.now() - it->second < config_.info_period_intra) {
        continue;
      }
    }
    send_message(j, msg);
  }
}

void BroadcastHost::info_round_inter() {
  // Rare exchange with everyone else; this is what lets remote hosts
  // discover who is ahead (attachment options I.3/II.3) and what feeds
  // non-neighbor gap filling.
  std::set<HostId> skip(state_.cluster().begin(), state_.cluster().end());
  for (HostId n : state_.neighbors()) skip.insert(n);
  const InfoMsg msg{state_.info(), state_.parent()};
  for (HostId j : state_.all_hosts()) {
    if (j == self() || skip.contains(j)) continue;
    send_message(j, msg);
  }
}

void BroadcastHost::gapfill_round_neighbor() {
  for (HostId n : state_.neighbors()) {
    if (!state_.in_cluster(n)) continue;  // out-of-cluster peers: far round
    const SeqSet offered = recent_offers(n);
    const auto plan = plan_neighbor_gapfill(state_, n, state_.is_child(n),
                                            config_.gapfill_burst, &offered);
    for (Seq seq : plan) send_gapfill(n, seq);
  }
}

void BroadcastHost::gapfill_round_far() {
  // Out-of-cluster parent-graph neighbors fill at this lower rate ("less
  // frequently for the members of different clusters"). They are filled
  // every round: a child depends on *us* for new maxima, so nobody else
  // can do this job.
  for (HostId n : state_.neighbors()) {
    if (state_.in_cluster(n)) continue;
    const SeqSet offered = recent_offers(n);
    const auto plan = plan_neighbor_gapfill(state_, n, state_.is_child(n),
                                            config_.gapfill_burst, &offered);
    for (Seq seq : plan) send_gapfill(n, seq);
  }
  if (!config_.nonneighbor_gapfill) return;

  // Non-neighbors (the Section 4.4 extension): any up-to-date host can
  // fill them, so each host serves only a small random subset per round —
  // see Config::far_fill_targets for why.
  std::set<HostId> neighbor_set;
  for (HostId n : state_.neighbors()) neighbor_set.insert(n);
  std::vector<HostId> behind;
  for (HostId j : state_.all_hosts()) {
    if (j == self() || neighbor_set.contains(j)) continue;
    const SeqSet offered = recent_offers(j);
    if (!plan_far_gapfill(state_, j, 1, &offered).empty()) behind.push_back(j);
  }
  std::size_t budget = std::min(config_.far_fill_targets, behind.size());
  while (budget-- > 0 && !behind.empty()) {
    const auto pick = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(behind.size()) - 1));
    const HostId j = behind[pick];
    behind.erase(behind.begin() + static_cast<std::ptrdiff_t>(pick));
    const SeqSet offered = recent_offers(j);
    const auto plan = plan_far_gapfill(state_, j, config_.gapfill_burst,
                                       &offered);
    for (Seq seq : plan) send_gapfill(j, seq);
  }
}

void BroadcastHost::maintenance_round() {
  const util::TimePoint now = scheduler_.now();

  // Parent liveness: "time out on a parent that fails to send messages
  // such as the ones containing its INFO set ... the host sets its parent
  // pointer to NIL" and immediately looks for a new parent.
  if (state_.parent().valid() &&
      now - last_parent_heard_ > config_.parent_timeout) {
    ++counters_.parent_timeouts;
    RBCAST_INFO(self() << " parent " << state_.parent() << " timed out");
    detach_from_parent(/*notify=*/false, /*timeout=*/true);
    attachment_round();
  }

  // Child liveness (engineering necessity; see Config::child_timeout).
  std::vector<HostId> stale;
  for (HostId child : state_.children()) {
    auto it = last_heard_.find(child);
    const util::TimePoint heard = it != last_heard_.end() ? it->second : 0;
    if (now - heard > config_.child_timeout) stale.push_back(child);
  }
  for (HostId child : stale) state_.remove_child(child);

  // Lapsed-offer sweep: keeps the optimistic-offer table bounded even for
  // peers no planner asks about anymore (e.g. removed children).
  for (auto host_it = offered_.begin(); host_it != offered_.end();) {
    std::erase_if(host_it->second,
                  [now](const auto& kv) { return kv.second <= now; });
    host_it = host_it->second.empty() ? offered_.erase(host_it) : ++host_it;
  }

  // Section 6 pruning: discard state for the prefix every host is known to
  // have.
  if (config_.enable_pruning) {
    const Seq safe = state_.safe_prefix();
    if (safe > state_.info().prune_watermark()) {
      state_.prune(safe);
      // Tags live exactly as long as the bodies they sign.
      auth_tags_.erase(auth_tags_.begin(), auth_tags_.upper_bound(safe));
    }
  }
}

// --- send helpers -----------------------------------------------------

void BroadcastHost::send_message(HostId to, ProtocolMessage m) {
  const std::size_t bytes = wire_size(m);
  const char* kind = kind_of(m);
  // Data messages (first sends, forwards and gap fills alike) carry the
  // causal trace id of their broadcast; control traffic stays untraced.
  net::TraceId trace_id = 0;
  if (const auto* data = std::get_if<DataMsg>(&m)) {
    trace_id = net::make_trace_id(source_, data->seq);
    // A piggybacked INFO set freshens the peer like a standalone report;
    // remember when so info_round_intra() can skip the redundant packet.
    if (data->piggyback.has_value()) {
      last_piggyback_[to] = scheduler_.now();
    }
  }
  endpoint_.send(to, std::any(std::move(m)), bytes, kind, trace_id);
}

DataMsg BroadcastHost::make_data(Seq seq, const Payload& body,
                                 bool gap_fill) const {
  DataMsg m{seq, body, gap_fill, std::nullopt, std::nullopt};
  if (config_.piggyback_info) {
    m.piggyback = std::make_pair(state_.info(), state_.parent());
  }
  if (config_.auth_enabled) {
    auto it = auth_tags_.find(seq);
    if (it != auth_tags_.end()) m.auth = it->second;
  }
  return m;
}

void BroadcastHost::send_gapfill(HostId to, Seq seq) {
  const Payload* body = state_.body_of(seq);
  RBCAST_ASSERT(body != nullptr);
  send_message(to, make_data(seq, *body, /*gap_fill=*/true));
  note_offered(to, seq);
  ++counters_.gapfills_sent;
  if (observer_ != nullptr) observer_->on_gapfill_offered(self(), to, seq);
}

void BroadcastHost::note_offered(HostId to, Seq seq) {
  offered_[to][seq] = scheduler_.now() + config_.gapfill_suppress_period;
}

void BroadcastHost::clear_refuted_offers(HostId from, const SeqSet& reported) {
  // `reported` is a full INFO snapshot straight from `from`. Any offered
  // seq it still lacks was lost (or is still in flight — at worst one
  // spurious re-offer): drop the suppression so the next round re-sends
  // without waiting for the time-based expiry. This is what keeps the
  // suppression from delaying genuine loss recovery.
  auto it = offered_.find(from);
  if (it == offered_.end()) return;
  std::erase_if(it->second,
                [&](const auto& kv) { return !reported.contains(kv.first); });
  if (it->second.empty()) offered_.erase(it);
}

SeqSet BroadcastHost::recent_offers(HostId j) {
  SeqSet live;
  auto host_it = offered_.find(j);
  if (host_it == offered_.end()) return live;
  const util::TimePoint now = scheduler_.now();
  auto& per_seq = host_it->second;
  for (auto it = per_seq.begin(); it != per_seq.end();) {
    if (it->second <= now) {
      it = per_seq.erase(it);  // lapsed: re-offers allowed again
    } else {
      live.insert(it->first);
      ++it;
    }
  }
  if (per_seq.empty()) offered_.erase(host_it);
  return live;
}

}  // namespace rbcast::core
