#include "core/attachment.h"

#include <algorithm>

#include "util/assert.h"

namespace rbcast::core {

namespace {

// Shared candidate filter: a host never proposes itself, a recently failed
// candidate, its current parent (re-attaching is a no-op), a known child,
// or a host it believes is attached to itself (both would form a trivial
// two-cycle on purpose).
bool basically_eligible(const HostState& s, HostId j,
                        const std::set<HostId>& excluded) {
  if (j == s.self()) return false;
  if (excluded.contains(j)) return false;
  if (j == s.parent()) return false;
  if (s.is_child(j)) return false;
  if (s.parent_of(j) == s.self()) return false;
  return true;
}

// "a cluster leader" from i's point of view: a host whose parent is not in
// i's cluster (a NIL parent counts — Section 4.1: "any host whose parent is
// not in the same cluster will be regarded as a cluster leader").
bool is_leader_view(const HostState& s, HostId j) {
  const HostId pj = s.parent_of(j);
  return !pj.valid() || !s.in_cluster(pj);
}

// Picks the best among candidates satisfying `pred`: maximal INFO maximum,
// then maximal static order. The INFO criterion serves delay (attach to
// whoever is most up to date); the order criterion makes ties
// deterministic and — for option (2) — drives all leaders of a cluster to
// consolidate under the single highest-order one.
template <typename Pred>
HostId best_candidate(const HostState& s, const std::set<HostId>& excluded,
                      Pred pred) {
  HostId best = kNoHost;
  Seq best_max = 0;
  int best_order = -1;
  for (HostId j : s.all_hosts()) {
    if (!basically_eligible(s, j, excluded)) continue;
    if (!pred(j)) continue;
    const Seq jmax = s.map(j).max_seq();
    const int jorder = s.order(j);
    if (!best.valid() || jmax > best_max ||
        (jmax == best_max && jorder > best_order)) {
      best = j;
      best_max = jmax;
      best_order = jorder;
    }
  }
  return best;
}

// Case I / II option (1): in-cluster leader with a strictly greater INFO set.
HostId option_1(const HostState& s, const std::set<HostId>& excluded) {
  return best_candidate(s, excluded, [&](HostId j) {
    return s.in_cluster(j) && is_leader_view(s, j) &&
           s.info().less_than(s.map(j));
  });
}

// Case I / II option (2): in-cluster leader with an equal-max INFO set and
// a greater static order number.
HostId option_2(const HostState& s, const std::set<HostId>& excluded) {
  return best_candidate(s, excluded, [&](HostId j) {
    return s.in_cluster(j) && is_leader_view(s, j) &&
           s.info().max_equal(s.map(j)) &&
           s.order(s.self()) < s.order(j);
  });
}

// Case I option (3): out-of-cluster host with a strictly greater INFO set.
HostId option_i3(const HostState& s, const std::set<HostId>& excluded) {
  return best_candidate(s, excluded, [&](HostId j) {
    return !s.in_cluster(j) && s.info().less_than(s.map(j));
  });
}

// Case II option (3): out-of-cluster host whose INFO set exceeds the
// current parent's (by more than the optional hysteresis margin).
HostId option_ii3(const HostState& s, const std::set<HostId>& excluded,
                  Seq margin) {
  const Seq parent_max = s.map(s.parent()).max_seq();
  return best_candidate(s, excluded, [&](HostId j) {
    return !s.in_cluster(j) && s.map(j).max_seq() > parent_max + margin;
  });
}

// Case III option (1): an ancestor other than the parent that is an
// in-cluster leader with an INFO set greater than or max-equal to ours.
HostId option_iii1(const HostState& s, const std::set<HostId>& excluded,
                   const std::vector<HostId>& ancestors) {
  for (HostId j : ancestors) {
    if (j == s.parent()) continue;  // "other than parent"
    if (!basically_eligible(s, j, excluded)) continue;
    if (!s.in_cluster(j)) continue;
    if (!is_leader_view(s, j)) continue;
    if (s.map(j).max_seq() >= s.info().max_seq()) return j;
  }
  return kNoHost;
}

AttachmentDecision decide(AttachmentDecision::Action action, HostId candidate,
                          std::string rule) {
  return AttachmentDecision{action, candidate, std::move(rule)};
}

}  // namespace

AttachmentDecision run_attachment(const HostState& state,
                                  const std::set<HostId>& excluded,
                                  Seq parent_switch_margin) {
  const HostId parent = state.parent();

  if (!parent.valid()) {
    // Case I: no parent.
    if (HostId j = option_1(state, excluded); j.valid()) {
      return decide(AttachmentDecision::Action::kAttach, j, "I.1");
    }
    if (HostId j = option_2(state, excluded); j.valid()) {
      return decide(AttachmentDecision::Action::kAttach, j, "I.2");
    }
    if (HostId j = option_i3(state, excluded); j.valid()) {
      return decide(AttachmentDecision::Action::kAttach, j, "I.3");
    }
    return {};
  }

  if (!state.in_cluster(parent)) {
    // Case II: parent in a different cluster — we are a cluster leader.
    if (HostId j = option_1(state, excluded); j.valid()) {
      return decide(AttachmentDecision::Action::kAttach, j, "II.1");
    }
    if (HostId j = option_2(state, excluded); j.valid()) {
      return decide(AttachmentDecision::Action::kAttach, j, "II.2");
    }
    if (HostId j = option_ii3(state, excluded, parent_switch_margin);
        j.valid()) {
      return decide(AttachmentDecision::Action::kAttach, j, "II.3");
    }
    return {};
  }

  // Case III: parent in the same cluster.
  const auto walk = state.ancestors_of_self();
  if (walk.cycle) {
    // A cycle through self. The special rule applies only when the cycle
    // is contained in one cluster (multi-cluster cycles break via II.3 at
    // a leader); "the host with the highest static order number on the
    // cycle shall detach from its parent".
    const bool single_cluster =
        std::all_of(walk.ancestors.begin(), walk.ancestors.end(),
                    [&](HostId h) { return state.in_cluster(h); });
    if (single_cluster) {
      const int my_order = state.order(state.self());
      const bool i_am_highest =
          std::all_of(walk.ancestors.begin(), walk.ancestors.end(),
                      [&](HostId h) { return state.order(h) < my_order; });
      if (i_am_highest) {
        return decide(AttachmentDecision::Action::kBreakCycle, kNoHost,
                      "cycle");
      }
    }
    return {};
  }

  if (HostId j = option_iii1(state, excluded, walk.ancestors); j.valid()) {
    return decide(AttachmentDecision::Action::kAttach, j, "III.1");
  }
  return {};
}

}  // namespace rbcast::core
