#include "core/messages.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace rbcast::core {

namespace {

// Fixed header: source id, destination id, type tag, sequence/checksum
// fields — a realistic 1980s application-level header.
constexpr std::size_t kHeaderBytes = 24;

struct SizeVisitor {
  std::size_t operator()(const DataMsg& m) const {
    std::size_t size = kHeaderBytes + 8 + m.body.size();
    if (m.auth.has_value()) {
      size += 16;  // digest + tag, both u64
    }
    if (m.piggyback.has_value()) {
      size += 4 + m.piggyback->first.wire_size();
    }
    return size;
  }
  std::size_t operator()(const InfoMsg& m) const {
    return kHeaderBytes + 4 + m.info.wire_size();
  }
  std::size_t operator()(const AttachRequest& m) const {
    return kHeaderBytes + m.info.wire_size();
  }
  std::size_t operator()(const AttachAccept& m) const {
    return kHeaderBytes + 4 + m.info.wire_size();
  }
  std::size_t operator()(const DetachNotice&) const { return kHeaderBytes; }
};

struct KindVisitor {
  const char* operator()(const DataMsg& m) const {
    return m.gap_fill ? "gapfill" : "data";
  }
  const char* operator()(const InfoMsg&) const { return "info"; }
  const char* operator()(const AttachRequest&) const { return "attach_req"; }
  const char* operator()(const AttachAccept&) const { return "attach_ack"; }
  const char* operator()(const DetachNotice&) const { return "detach"; }
};

}  // namespace

std::size_t wire_size(const ProtocolMessage& m) {
  return std::visit(SizeVisitor{}, m);
}

const char* kind_of(const ProtocolMessage& m) {
  return std::visit(KindVisitor{}, m);
}

bool is_data(const ProtocolMessage& m) {
  return std::holds_alternative<DataMsg>(m);
}

// --- wire codec -----------------------------------------------------------

namespace {

enum : std::uint8_t {
  kTagData = 1,
  kTagInfo = 2,
  kTagAttachRequest = 3,
  kTagAttachAccept = 4,
  kTagDetach = 5,
};

enum : std::uint8_t {
  kDataFlagGapFill = 1,
  kDataFlagPiggyback = 2,
  // Authenticated frame: digest + tag follow the body (see auth.h).
  // Pre-auth decoders reject the unknown flag bit, which doubles as
  // version negotiation: a mixed fleet cannot half-verify a stream.
  kDataFlagAuth = 4,
};

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_i32(std::string& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_seq_set(std::string& out, const SeqSet& set) {
  const std::vector<std::uint8_t> bytes = set.encode();
  put_u32(out, static_cast<std::uint32_t>(bytes.size()));
  out.append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

// Bounds-checked little-endian reads over an untrusted buffer.
class Reader {
 public:
  Reader(const char* data, std::size_t size) : data_(data), size_(size) {}

  [[nodiscard]] bool take_u8(std::uint8_t& v) {
    if (pos_ + 1 > size_) return false;
    v = static_cast<std::uint8_t>(data_[pos_++]);
    return true;
  }

  [[nodiscard]] bool take_u32(std::uint32_t& v) {
    if (pos_ + 4 > size_) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  [[nodiscard]] bool take_u64(std::uint64_t& v) {
    if (pos_ + 8 > size_) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  [[nodiscard]] bool take_string(std::string& out, std::size_t n) {
    if (pos_ + n > size_) return false;
    out.assign(data_ + pos_, n);
    pos_ += n;
    return true;
  }

  // SeqSet::decode validates the interval invariants and kMaxSeq bound
  // itself; this only frames the bytes.
  [[nodiscard]] bool take_seq_set(SeqSet& out) {
    std::uint32_t len = 0;
    if (!take_u32(len) || pos_ + len > size_) return false;
    auto decoded = SeqSet::decode(
        reinterpret_cast<const std::uint8_t*>(data_ + pos_), len);
    if (!decoded.has_value()) return false;
    pos_ += len;
    out = *std::move(decoded);
    return true;
  }

  [[nodiscard]] bool take_host(HostId& out) {
    std::uint32_t raw = 0;
    if (!take_u32(raw)) return false;
    const auto v = static_cast<std::int32_t>(raw);
    if (v < kNoHost.value) return false;
    out = HostId{v};
    return true;
  }

  [[nodiscard]] bool done() const { return pos_ == size_; }

 private:
  const char* data_;
  std::size_t size_;
  std::size_t pos_{0};
};

struct EncodeVisitor {
  std::string& out;

  void operator()(const DataMsg& m) const {
    put_u8(out, kTagData);
    put_u64(out, m.seq);
    std::uint8_t flags = 0;
    if (m.gap_fill) flags |= kDataFlagGapFill;
    if (m.piggyback.has_value()) flags |= kDataFlagPiggyback;
    if (m.auth.has_value()) flags |= kDataFlagAuth;
    put_u8(out, flags);
    put_u32(out, static_cast<std::uint32_t>(m.body.size()));
    out.append(m.body.view());
    if (m.auth.has_value()) {
      put_u64(out, m.auth->digest);
      put_u64(out, m.auth->tag);
    }
    if (m.piggyback.has_value()) {
      put_seq_set(out, m.piggyback->first);
      put_i32(out, m.piggyback->second.value);
    }
  }
  void operator()(const InfoMsg& m) const {
    put_u8(out, kTagInfo);
    put_seq_set(out, m.info);
    put_i32(out, m.parent.value);
  }
  void operator()(const AttachRequest& m) const {
    put_u8(out, kTagAttachRequest);
    put_seq_set(out, m.info);
  }
  void operator()(const AttachAccept& m) const {
    put_u8(out, kTagAttachAccept);
    put_seq_set(out, m.info);
    put_i32(out, m.parent.value);
  }
  void operator()(const DetachNotice&) const { put_u8(out, kTagDetach); }
};

}  // namespace

std::string encode_message(const ProtocolMessage& m) {
  std::string out;
  out.reserve(wire_size(m));
  std::visit(EncodeVisitor{out}, m);
  return out;
}

std::optional<ProtocolMessage> decode_message(const char* data,
                                              std::size_t size) {
  Reader r(data, size);
  std::uint8_t tag = 0;
  if (!r.take_u8(tag)) return std::nullopt;
  ProtocolMessage m;
  switch (tag) {
    case kTagData: {
      DataMsg d;
      std::uint8_t flags = 0;
      std::uint32_t body_len = 0;
      std::string body;
      if (!r.take_u64(d.seq) || d.seq < 1 || d.seq > SeqSet::kMaxSeq ||
          !r.take_u8(flags) ||
          (flags &
           ~(kDataFlagGapFill | kDataFlagPiggyback | kDataFlagAuth)) != 0 ||
          !r.take_u32(body_len) || body_len > kMaxBodyBytes ||
          !r.take_string(body, body_len)) {
        return std::nullopt;
      }
      d.body = body;
      d.gap_fill = (flags & kDataFlagGapFill) != 0;
      if ((flags & kDataFlagAuth) != 0) {
        AuthTag t;
        if (!r.take_u64(t.digest) || !r.take_u64(t.tag)) {
          return std::nullopt;
        }
        d.auth = t;
      }
      if ((flags & kDataFlagPiggyback) != 0) {
        SeqSet info;
        HostId parent{kNoHost};
        if (!r.take_seq_set(info) || !r.take_host(parent)) {
          return std::nullopt;
        }
        d.piggyback.emplace(std::move(info), parent);
      }
      m = std::move(d);
      break;
    }
    case kTagInfo: {
      InfoMsg i;
      if (!r.take_seq_set(i.info) || !r.take_host(i.parent)) {
        return std::nullopt;
      }
      m = std::move(i);
      break;
    }
    case kTagAttachRequest: {
      AttachRequest a;
      if (!r.take_seq_set(a.info)) return std::nullopt;
      m = std::move(a);
      break;
    }
    case kTagAttachAccept: {
      AttachAccept a;
      if (!r.take_seq_set(a.info) || !r.take_host(a.parent)) {
        return std::nullopt;
      }
      m = std::move(a);
      break;
    }
    case kTagDetach:
      m = DetachNotice{};
      break;
    default:
      return std::nullopt;
  }
  if (!r.done()) return std::nullopt;  // trailing bytes
  return m;
}

}  // namespace rbcast::core
