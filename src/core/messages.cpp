#include "core/messages.h"

namespace rbcast::core {

namespace {

// Fixed header: source id, destination id, type tag, sequence/checksum
// fields — a realistic 1980s application-level header.
constexpr std::size_t kHeaderBytes = 24;

struct SizeVisitor {
  std::size_t operator()(const DataMsg& m) const {
    std::size_t size = kHeaderBytes + 8 + m.body.size();
    if (m.piggyback.has_value()) {
      size += 4 + m.piggyback->first.wire_size();
    }
    return size;
  }
  std::size_t operator()(const InfoMsg& m) const {
    return kHeaderBytes + 4 + m.info.wire_size();
  }
  std::size_t operator()(const AttachRequest& m) const {
    return kHeaderBytes + m.info.wire_size();
  }
  std::size_t operator()(const AttachAccept& m) const {
    return kHeaderBytes + 4 + m.info.wire_size();
  }
  std::size_t operator()(const DetachNotice&) const { return kHeaderBytes; }
};

struct KindVisitor {
  const char* operator()(const DataMsg& m) const {
    return m.gap_fill ? "gapfill" : "data";
  }
  const char* operator()(const InfoMsg&) const { return "info"; }
  const char* operator()(const AttachRequest&) const { return "attach_req"; }
  const char* operator()(const AttachAccept&) const { return "attach_ack"; }
  const char* operator()(const DetachNotice&) const { return "detach"; }
};

}  // namespace

std::size_t wire_size(const ProtocolMessage& m) {
  return std::visit(SizeVisitor{}, m);
}

const char* kind_of(const ProtocolMessage& m) {
  return std::visit(KindVisitor{}, m);
}

bool is_data(const ProtocolMessage& m) {
  return std::holds_alternative<DataMsg>(m);
}

}  // namespace rbcast::core
