// Tunable parameters of the reliable broadcast protocol.
//
// Section 6 of the paper: "these trade-offs are embodied in the frequency
// with which hosts enact INFO exchange, parent pointer exchange, and gap
// filling. These can be tuned according to specific cost-reliability
// requirements." Every such frequency is a field here; the trade-off bench
// (E7) sweeps them.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/time.h"
#include "util/seq_set.h"

namespace rbcast::core {

struct Config {
  // --- periodic activities ----------------------------------------------

  // The attachment procedure is "periodically activated at every host"
  // (Section 4.2). "This time period is a parameter of the algorithm."
  util::Duration attach_period{util::seconds(2)};

  // INFO set + parent pointer exchange. "This is done more frequently for
  // the members of the same cluster and less frequently for the members of
  // different clusters" (Section 4.4) — the same split applies to the
  // exchanges themselves, since intra-cluster messages are cheap.
  // Parent-graph neighbors (parent/children) are treated as intra-rate
  // peers regardless of cluster: the parent timeout depends on hearing
  // them routinely.
  util::Duration info_period_intra{util::milliseconds(500)};
  util::Duration info_period_inter{util::seconds(4)};

  // Periodic gap filling toward parent-graph neighbors (frequent) and
  // toward everyone else — the Section 4.4 non-neighbor extension (rare,
  // "the frequency of this type of gap filling should be relatively low
  // since it operates across cluster boundaries").
  util::Duration gapfill_period_neighbor{util::seconds(1)};
  util::Duration gapfill_period_far{util::seconds(8)};

  // --- timeouts ----------------------------------------------------------

  // "time out on a parent that fails to send messages" (Section 4.3); on
  // expiry the parent pointer is set to NIL.
  util::Duration parent_timeout{util::seconds(10)};

  // "If the acknowledgment to this [attach request] times out, the
  // procedure is repeated to find another candidate" (Section 4.2).
  util::Duration attach_ack_timeout{util::seconds(1)};

  // How many consecutive attach timeouts may trigger an *immediate* retry
  // against the next candidate. The paper's "the procedure is repeated"
  // must not degenerate into a request stream at rate 1/attach_ack_timeout
  // when every candidate is silent (total partition): once this many
  // retries in a row have timed out, further attempts are left to the
  // periodic attachment timer (rate 1/attach_period), which keeps attach
  // traffic bounded however long the partition lasts. Reset on any
  // completed handshake.
  std::size_t attach_retry_burst{3};

  // Engineering necessity the paper leaves implicit: a parent must
  // eventually forget a child it never hears from, or it would forward
  // data to departed/unreachable children forever.
  util::Duration child_timeout{util::seconds(30)};

  // --- volume limits ------------------------------------------------------

  // Max gap-fill data messages sent to one peer per periodic round.
  std::size_t gapfill_burst{16};

  // After offering a message to a peer (gap fill, back-fill or forward),
  // the sender refrains from re-offering the same sequence number to that
  // peer for this long — the offered seqs are optimistically folded into
  // the sender's view of the peer's INFO set. Without this, consecutive
  // gap-fill rounds against a MAP that has not refreshed yet (INFO exchange
  // is slower than gap filling) re-send identical messages (~10% excess
  // inter-cluster traffic in E1). Rollback-free: nothing is ever removed
  // from MAP; when the period lapses an unacknowledged offer is simply
  // offered again, so a lost gap fill delays redelivery by at most this
  // period. Should span a couple of neighbor gap-fill rounds and stay
  // below gapfill_period_far.
  util::Duration gapfill_suppress_period{util::seconds(3)};
  // Max messages back-filled immediately when a new child attaches
  // ("the parent ... forwards to the child all those messages that the
  // child is missing"); the periodic filler finishes longer tails.
  std::size_t attach_backfill_burst{64};

  // Hysteresis for case II option (3): a cluster leader switches to an
  // out-of-cluster host j only when max(MAP[j]) exceeds max(MAP[parent])
  // by more than this margin. 0 reproduces the paper exactly (any strictly
  // greater INFO set triggers a switch); the ablation bench explores the
  // churn/delay trade-off of larger margins.
  util::Seq parent_switch_margin{0};

  // --- feature toggles (ablations) ----------------------------------------

  // The Section 4.4 extension: gap filling between hosts that are not
  // parent-graph neighbors. Required for the Figure 4.1 scenario; E10
  // ablates it.
  bool nonneighbor_gapfill{true};

  // How many non-neighbor targets one host fills per far round. Bounding
  // this matters: if every up-to-date host filled every laggard each
  // round, a cluster behind a slow trunk would receive the same missing
  // messages from all of them at once and congestion-collapse. A small
  // random subset keeps aggregate repair traffic proportional to the gap,
  // not to the host count (the paper: the frequency of cross-cluster gap
  // filling "should be relatively low").
  std::size_t far_fill_targets{2};

  // Section 6 optimization: prune INFO prefixes once every host is known
  // to have them.
  bool enable_pruning{true};

  // Section 6 optimization: piggyback the sender's INFO set and parent
  // pointer on every data message, keeping parent-graph neighbors' MAPs
  // fresh without separate control packets (allows stretching the INFO
  // exchange periods). Off by default: the baseline protocol sends
  // control messages separately.
  bool piggyback_info{false};

  // Byzantine hardening (see core/auth.h): when on, every DATA/gap-fill
  // frame carries a payload digest and a per-source authentication tag
  // over (source, seq, digest); receivers drop frames whose tag does not
  // verify and count them in Counters::auth_rejects. Off by default — the
  // faithful paper protocol trusts relays, and the determinism digests are
  // pinned with authentication disabled.
  bool auth_enabled{false};

  // Seed of the per-source key schedule. All honest hosts share it (a
  // symmetric stand-in for a signature PKI); the Byzantine adversary layer
  // never recomputes tags, which models unforgeability.
  std::uint64_t auth_secret{0x52424341'55544831ULL};  // "RBCA UTH1"

  // Cluster knowledge mode (Section 6 discussion):
  //   kDynamic — maintain CLUSTER_i from the cost bit (the paper's default)
  //   kStatic  — CLUSTER_i fixed to ground truth at start, never updated
  //   kNone    — every host believes it is alone in its cluster
  enum class ClusterKnowledge { kDynamic, kStatic, kNone };
  ClusterKnowledge cluster_knowledge{ClusterKnowledge::kDynamic};

  // --- data plane (transport batching) ------------------------------------

  // Per-link coalescing (transport::Coalescer): outbound frames to the
  // same destination buffer for up to `batch_flush_delay` or until the
  // encoded datagram would exceed `batch_max_bytes`, then flush as one
  // multi-frame datagram (wire version 2). 0 disables batching — the
  // default, and the configuration the determinism digests are pinned
  // under. The composition roots (harness::Experiment, rbcast_node) map
  // these into the transport's CoalescerConfig.
  util::Duration batch_flush_delay{0};
  std::size_t batch_max_bytes{1200};

  // --- workload ----------------------------------------------------------

  // Payload size of one data message body.
  std::size_t data_bytes{256};
};

}  // namespace rbcast::core
