// Per-host protocol state — the data structures of Section 4.2, kept free
// of any networking or timing so the attachment and gap-filling logic can
// be unit-tested in isolation.
//
//   INFO_i      — sequence numbers of all messages received by i
//   MAP_i[j]    — i's (possibly stale) view of INFO_j; MAP_i[i] == INFO_i
//   CLUSTER_i   — hosts i currently believes share its cluster
//   CHILDREN_i  — i's children in the host parent graph
//   p_i[j]      — i's view of j's parent; p_i[i] is i's true parent
//   order(i)    — the static linear ordering over all hosts
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/payload.h"
#include "util/ids.h"
#include "util/seq_set.h"

namespace rbcast::core {

using util::Seq;
using util::SeqSet;

class HostState {
 public:
  // `all_hosts` must contain `self`. Any fixed linear order satisfies the
  // paper's requirement; ours is the host id value with the broadcast
  // source promoted to the maximum. The promotion matters for liveness:
  // option (2) of the attachment procedure consolidates a cluster's
  // leaders under its greatest-order member, and the source — the one
  // permanent root, which never attaches — must therefore outrank its
  // cluster peers or a second leader in the source's cluster would be a
  // stable configuration whenever the stream is quiescent (option (1)
  // needs an INFO gap that only exists while a message is in flight).
  // Found by the chaos harness; see DESIGN.md Section 10.
  HostState(HostId self, std::vector<HostId> all_hosts,
            HostId source = kNoHost);

  [[nodiscard]] HostId self() const { return self_; }
  [[nodiscard]] const std::vector<HostId>& all_hosts() const {
    return all_hosts_;
  }

  // --- static order ------------------------------------------------------
  [[nodiscard]] int order(HostId h) const {
    return h == source_ ? source_order_ : h.value;
  }

  // --- INFO / message store ----------------------------------------------

  [[nodiscard]] const SeqSet& info() const { return info_; }

  // Records receipt of message `seq` with payload `body`. Returns true if
  // it was new (first receipt — exactly-once delivery to the application
  // keys off this).
  bool record_message(Seq seq, Payload body);

  [[nodiscard]] bool has_message(Seq seq) const { return info_.contains(seq); }
  // Payload of a stored message; nullptr if unknown or pruned away.
  [[nodiscard]] const Payload* body_of(Seq seq) const;

  // Drops state for the safe prefix 1..watermark (Section 6 pruning).
  void prune(Seq watermark);

  // Largest prefix 1..n known (via MAP) to be held by *every* host; the
  // safe pruning watermark. Hosts never heard from pin this at 0.
  [[nodiscard]] Seq safe_prefix() const;

  // --- MAP -----------------------------------------------------------------

  // View of INFO_j (INFO_i itself when j == self).
  [[nodiscard]] const SeqSet& map(HostId j) const;
  // Merges freshly learned knowledge about j's INFO set (INFO sets only
  // grow, so merging is always sound even with reordered control traffic).
  void learn_info(HostId j, const SeqSet& info);
  // Records that j provably has `seq` (we received a data message from j).
  void learn_has(HostId j, Seq seq);

  // --- CLUSTER ---------------------------------------------------------------

  [[nodiscard]] const std::set<HostId>& cluster() const { return cluster_; }
  [[nodiscard]] bool in_cluster(HostId j) const {
    return cluster_.contains(j);
  }
  // Applies the paper's cost-bit rule: a cheap delivery from j adds j to
  // CLUSTER_i, an expensive one removes it. No-op for self.
  void update_cluster_from_cost_bit(HostId j, bool expensive);
  // Overrides the cluster set (static cluster knowledge mode).
  void set_cluster(std::set<HostId> cluster);

  // --- parent graph ---------------------------------------------------------

  [[nodiscard]] HostId parent() const { return parent_of_self_; }
  void set_parent(HostId p) {
    parent_of_self_ = p;
    parent_view_[self_] = p;
  }

  // p_i[j]: i's view of j's parent (kNoHost when unknown / none).
  [[nodiscard]] HostId parent_of(HostId j) const;
  void learn_parent(HostId j, HostId parent);

  [[nodiscard]] const std::set<HostId>& children() const { return children_; }
  void add_child(HostId j) {
    if (j != self_) children_.insert(j);
  }
  void remove_child(HostId j) { children_.erase(j); }
  [[nodiscard]] bool is_child(HostId j) const { return children_.contains(j); }

  // Parent-graph neighbors: children plus the current parent (if any).
  [[nodiscard]] std::vector<HostId> neighbors() const;

  // Ancestor chain of `start` according to p_i[]: follows parent pointers
  // until NIL, an unknown host, or a repetition. If the walk returns to
  // `start`, a cycle is reported along with its members.
  struct AncestorWalk {
    std::vector<HostId> ancestors;  // in order: parent, grandparent, ...
    bool cycle{false};              // true iff the walk re-reached `start`
  };
  [[nodiscard]] AncestorWalk ancestors_of_self() const;

 private:
  // Full-structure consistency sweep; no-op unless RBCAST_PARANOID.
  void check_invariants() const;

  HostId self_;
  std::vector<HostId> all_hosts_;
  HostId source_{kNoHost};
  int source_order_{0};  // 1 + max host id: strictly above every peer

  SeqSet info_;
  std::map<Seq, Payload> bodies_;
  // Ordered maps: protocol decisions iterate MAP and the parent view, and
  // hash-order iteration would make runs seed-irreproducible.
  std::map<HostId, SeqSet> map_;
  std::set<HostId> cluster_;
  std::set<HostId> children_;
  std::map<HostId, HostId> parent_view_;
  HostId parent_of_self_{kNoHost};
};

}  // namespace rbcast::core
