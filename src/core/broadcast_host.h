// BroadcastHost — the complete protocol automaton running on one host.
//
// Glues the pure pieces (HostState, the attachment procedure, the gap-fill
// planners) to the simulator (periodic activations, timeouts) and to the
// network endpoint (the paper's single-destination send + cost-bit
// delivery). One instance runs per participating host; the instance whose
// id equals `source` plays the source role (generates the stream, never
// runs the attachment procedure, is the root of the host parent graph).
//
// Delivery semantics offered to the application: every broadcast message is
// delivered exactly once per host, not necessarily in order — the paper
// deliberately relaxes ordering to cut delay (Section 1).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "core/attachment.h"
#include "core/config.h"
#include "core/host_state.h"
#include "core/messages.h"
#include "core/protocol_observer.h"
#include "net/message.h"
#include "transport/transport.h"
#include "util/metrics_registry.h"
#include "util/scheduler.h"
#include "util/rng.h"

namespace rbcast::core {

class BroadcastHost {
 public:
  // Called on first receipt of each data message (unordered delivery).
  // The view aliases the refcounted Payload held in HostState; copy it if
  // it must outlive the callback.
  using AppDeliverFn = std::function<void(Seq, std::string_view body)>;

  // `endpoint` must outlive this object. `rng` drives only phase jitter of
  // the periodic tasks (so hosts do not act in lock-step).
  BroadcastHost(util::Scheduler& scheduler, net::HostEndpoint& endpoint,
                HostId source, std::vector<HostId> all_hosts, Config config,
                util::Rng rng, AppDeliverFn app_deliver = {});

  // Transport-backed construction: attaches `self` to `transport` (which
  // must outlive this object), wiring on_delivery as the upcall and
  // running the periodic tasks on the transport's scheduler. The same
  // host code runs over the simulator (SimTransport) and real sockets
  // (UdpTransport); the destructor detaches.
  BroadcastHost(transport::Transport& transport, HostId self, HostId source,
                std::vector<HostId> all_hosts, Config config, util::Rng rng,
                AppDeliverFn app_deliver = {});

  ~BroadcastHost();

  BroadcastHost(const BroadcastHost&) = delete;
  BroadcastHost& operator=(const BroadcastHost&) = delete;

  // Arms the periodic activities. Call once, after the network knows how
  // to deliver to this host.
  void start();

  // Network upcall: a message for this host arrived (with its cost bit).
  void on_delivery(const net::Delivery& delivery);

  // Source API: appends the next message to the broadcast stream.
  // Precondition: is_source().
  Seq broadcast(std::string body);

  // --- introspection ------------------------------------------------------

  [[nodiscard]] HostId self() const { return state_.self(); }
  [[nodiscard]] bool is_source() const { return self() == source_; }
  [[nodiscard]] const HostState& state() const { return state_; }
  [[nodiscard]] HostId parent() const { return state_.parent(); }
  [[nodiscard]] const SeqSet& info() const { return state_.info(); }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] Seq last_broadcast_seq() const { return next_seq_ - 1; }

  struct Counters {
    std::uint64_t attach_attempts{0};
    // Attach attempts keyed by the rule that proposed them ("I.1".."III.1")
    // — which options actually fire is itself an experimental observable.
    std::map<std::string, std::uint64_t> attempts_by_rule;
    std::uint64_t attach_timeouts{0};
    std::uint64_t attaches_completed{0};
    std::uint64_t cycles_broken{0};
    std::uint64_t parent_timeouts{0};
    std::uint64_t new_max_rejected{0};  // new maximum offered by a non-parent
    std::uint64_t duplicates_discarded{0};
    std::uint64_t data_forwarded{0};
    std::uint64_t gapfills_sent{0};
    std::uint64_t deliveries{0};  // first receipts handed to the app
    // Deliveries whose payload failed wire decoding (empty std::any from
    // the transport): counted and dropped, exactly like any other loss.
    std::uint64_t decode_errors{0};
    // Data frames dropped because the per-source authentication tag was
    // missing or failed verification (Config::auth_enabled, see auth.h).
    // Rejected frames leave every bit of protocol state untouched — not
    // even liveness or cluster bookkeeping may trust them.
    std::uint64_t auth_rejects{0};
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  // Forces the attachment procedure to run now (tests).
  void run_attachment_now() { attachment_round(); }

  // Forces one gap-fill round now (tests).
  void run_gapfill_neighbor_now() { gapfill_round_neighbor(); }
  void run_gapfill_far_now() { gapfill_round_far(); }

  // Seeds CLUSTER_i (static cluster knowledge mode, or "some information
  // to the contrary" at initialization — Section 4.2). Call before start().
  void seed_cluster(std::set<HostId> cluster) {
    state_.set_cluster(std::move(cluster));
  }

  // Installs a protocol-event observer (nullptr to remove).
  void set_observer(ProtocolObserver* observer) { observer_ = observer; }

  // Registers this host's counters and attachment/watermark gauges into
  // `registry` under the shared host.* names, labelled `labels` (e.g.
  // "host=\"3\"" — must be unique per host within one registry). The
  // registration is observation-only and is dropped automatically when
  // the host is destroyed. At most one registry per host.
  void register_metrics(util::MetricsRegistry& registry,
                        const std::string& labels);

 private:
  // --- message handlers -----------------------------------------------
  void handle_data(HostId from, const DataMsg& m);
  void handle_info(HostId from, const InfoMsg& m);
  void handle_attach_request(HostId from, const AttachRequest& m);
  void handle_attach_accept(HostId from, const AttachAccept& m);
  void handle_detach(HostId from);

  // --- periodic activities ---------------------------------------------
  void attachment_round();
  void info_round_intra();
  void info_round_inter();
  void gapfill_round_neighbor();
  void gapfill_round_far();
  void maintenance_round();  // parent/child timeouts, pruning

  // --- helpers -----------------------------------------------------------
  void send_message(HostId to, ProtocolMessage m);
  // Builds a data message (attaching the piggybacked INFO when enabled).
  [[nodiscard]] DataMsg make_data(Seq seq, const Payload& body,
                                  bool gap_fill) const;
  void send_gapfill(HostId to, Seq seq);
  // Records that `seq` was just offered to `to` (any data send counts);
  // re-offers are suppressed until the suppress period lapses or the peer
  // reports an INFO set that still lacks the seq (see clear_refuted_offers).
  void note_offered(HostId to, Seq seq);
  // Drops offers toward `from` that its freshly reported INFO refutes.
  void clear_refuted_offers(HostId from, const SeqSet& reported);
  // Live (unexpired) offers toward `j`, purging lapsed ones.
  [[nodiscard]] SeqSet recent_offers(HostId j);
  void begin_attach(HostId candidate, const std::string& rule);
  void on_attach_timeout(HostId candidate);
  void detach_from_parent(bool notify, bool timeout);
  void accept_message(Seq seq, const Payload& body, bool was_new_max,
                      HostId from);
  [[nodiscard]] std::set<HostId> current_exclusions();

  util::Scheduler& scheduler_;
  net::HostEndpoint& endpoint_;
  // Set only by the Transport-backed constructor; the destructor detaches.
  transport::Transport* transport_{nullptr};
  HostId source_;
  Config config_;
  HostState state_;
  util::Rng rng_;
  AppDeliverFn app_deliver_;
  ProtocolObserver* observer_{nullptr};

  Seq next_seq_{1};  // source only: next sequence number to assign

  // Attach handshake in flight.
  HostId pending_attach_{kNoHost};
  util::EventId attach_timer_{};
  // Timeouts since the last completed handshake; once past
  // Config::attach_retry_burst, retries wait for the periodic timer.
  std::size_t consecutive_attach_timeouts_{0};

  // Candidates whose handshake recently timed out, with expiry times.
  // Ordered: current_exclusions() iterates it, and the exclusion order
  // feeds attachment decisions.
  std::map<HostId, util::TimePoint> failed_candidates_;

  // Liveness bookkeeping.
  util::TimePoint last_parent_heard_{0};
  std::map<HostId, util::TimePoint> last_heard_;

  // Piggyback suppression (Config::piggyback_info): when a data message
  // carrying our INFO set just went to a neighbor, the next intra-cluster
  // INFO round skips that neighbor — the report already rode along.
  std::map<HostId, util::TimePoint> last_piggyback_;

  // Optimistic offer tracking (duplicate gap-fill suppression): per peer,
  // the expiry time of each outstanding offer. Ordered for determinism.
  std::map<HostId, std::map<Seq, util::TimePoint>> offered_;

  // Source tags of accepted messages (Config::auth_enabled): relays
  // forward the original tag verbatim — they cannot re-sign — so it must
  // be kept alongside the body. Pruned in lockstep with HostState.
  std::map<Seq, AuthTag> auth_tags_;

  Counters counters_;

  // Metric registration to undo on destruction (register_metrics).
  util::MetricsRegistry* metrics_registry_{nullptr};
  std::string metrics_labels_;
  std::vector<std::string> metrics_names_;

  // Periodic tasks (declared last: they capture `this` and must die first).
  std::unique_ptr<util::PeriodicTask> attach_task_;
  std::unique_ptr<util::PeriodicTask> info_intra_task_;
  std::unique_ptr<util::PeriodicTask> info_inter_task_;
  std::unique_ptr<util::PeriodicTask> gapfill_neighbor_task_;
  std::unique_ptr<util::PeriodicTask> gapfill_far_task_;
  std::unique_ptr<util::PeriodicTask> maintenance_task_;
};

}  // namespace rbcast::core
