#include "core/auth.h"

namespace rbcast::core {

namespace {

// splitmix64 finalizer — the same mixer util::Rng seeds from.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t payload_digest(std::string_view body) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  for (const char c : body) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;  // FNV-1a prime
  }
  return h;
}

std::uint64_t auth_mac(std::uint64_t secret, HostId source, util::Seq seq,
                       std::uint64_t digest) {
  // Derive the per-source key, then chain the bound fields through the
  // mixer. Every field feeds a full mixing round, so truncating or
  // reordering fields cannot collide trivially.
  std::uint64_t k = mix(secret ^ 0xa076bc9f1ull);
  k = mix(k ^ static_cast<std::uint64_t>(
                  static_cast<std::int64_t>(source.value)));
  k = mix(k ^ seq);
  k = mix(k ^ digest);
  return k;
}

AuthTag make_auth_tag(std::uint64_t secret, HostId source, util::Seq seq,
                      std::string_view body) {
  AuthTag t;
  t.digest = payload_digest(body);
  t.tag = auth_mac(secret, source, seq, t.digest);
  return t;
}

bool verify_auth_tag(std::uint64_t secret, HostId source, util::Seq seq,
                     std::string_view body, const AuthTag& t) {
  return t.digest == payload_digest(body) &&
         t.tag == auth_mac(secret, source, seq, t.digest);
}

}  // namespace rbcast::core
