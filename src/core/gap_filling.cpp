#include "core/gap_filling.h"

namespace rbcast::core {

namespace {

// Restricts a plan to messages whose bodies are still stored (pruning may
// have released old payloads; what is pruned is by definition already at
// every host, so nothing is lost by skipping it).
std::vector<Seq> only_stored(const HostState& state, std::vector<Seq> seqs) {
  std::erase_if(seqs,
                [&](Seq q) { return state.body_of(q) == nullptr; });
  return seqs;
}

// The peer's known INFO with the recently offered seqs optimistically
// folded in. Returns `known` itself when there is nothing to fold (the
// common case — no copy made).
const SeqSet& with_offers(const SeqSet& known, const SeqSet* recently_offered,
                          SeqSet& scratch) {
  if (recently_offered == nullptr || recently_offered->empty()) return known;
  scratch = known;
  scratch.merge(*recently_offered);
  return scratch;
}

}  // namespace

std::vector<Seq> plan_attach_backfill(const HostState& state,
                                      const SeqSet& child_info,
                                      std::size_t burst,
                                      const SeqSet* recently_offered) {
  SeqSet scratch;
  const SeqSet& assumed = with_offers(child_info, recently_offered, scratch);
  return only_stored(state, state.info().missing_from(assumed, burst));
}

std::vector<Seq> plan_neighbor_gapfill(const HostState& state, HostId j,
                                       bool j_is_child, std::size_t burst,
                                       const SeqSet* recently_offered) {
  const SeqSet& known = state.map(j);
  SeqSet scratch;
  const SeqSet& assumed = with_offers(known, recently_offered, scratch);
  if (j_is_child) {
    return only_stored(state, state.info().missing_from(assumed, burst));
  }
  // Cap at the *actual* known max: folded-in offers must suppress
  // re-offers, never raise what we may push at a non-child.
  return only_stored(
      state, state.info().missing_from_capped(assumed, known.max_seq(), burst));
}

std::vector<Seq> plan_far_gapfill(const HostState& state, HostId j,
                                  std::size_t burst,
                                  const SeqSet* recently_offered) {
  const SeqSet& known = state.map(j);
  if (known.empty()) return {};  // never heard of j's INFO; nothing safe to say
  SeqSet scratch;
  const SeqSet& assumed = with_offers(known, recently_offered, scratch);
  return only_stored(
      state, state.info().missing_from_capped(assumed, known.max_seq(), burst));
}

}  // namespace rbcast::core
