#include "core/gap_filling.h"

namespace rbcast::core {

namespace {

// Restricts a plan to messages whose bodies are still stored (pruning may
// have released old payloads; what is pruned is by definition already at
// every host, so nothing is lost by skipping it).
std::vector<Seq> only_stored(const HostState& state, std::vector<Seq> seqs) {
  std::erase_if(seqs,
                [&](Seq q) { return state.body_of(q) == nullptr; });
  return seqs;
}

}  // namespace

std::vector<Seq> plan_attach_backfill(const HostState& state,
                                      const SeqSet& child_info,
                                      std::size_t burst) {
  return only_stored(state, state.info().missing_from(child_info, burst));
}

std::vector<Seq> plan_neighbor_gapfill(const HostState& state, HostId j,
                                       bool j_is_child, std::size_t burst) {
  const SeqSet& known = state.map(j);
  if (j_is_child) {
    return only_stored(state, state.info().missing_from(known, burst));
  }
  return only_stored(
      state, state.info().missing_from_capped(known, known.max_seq(), burst));
}

std::vector<Seq> plan_far_gapfill(const HostState& state, HostId j,
                                  std::size_t burst) {
  const SeqSet& known = state.map(j);
  if (known.empty()) return {};  // never heard of j's INFO; nothing safe to say
  return only_stored(
      state, state.info().missing_from_capped(known, known.max_seq(), burst));
}

}  // namespace rbcast::core
