// Multiple-source broadcast (Section 2).
//
// "Here, we study only a single-source broadcast problem. However, a
//  multiple-source broadcast can be performed reliably by running several
//  identical single-source protocols suggested in the present paper. From
//  the point of view of efficiency this option also appears to be a
//  reasonable one."
//
// MultiSourceNode does exactly that: it runs one independent BroadcastHost
// instance per source on each host, multiplexed over the host's single
// network endpoint. Each instance maintains its own host parent graph
// (rooted at its source), its own INFO/MAP state and its own periodic
// activities; messages are tagged with the owning source on the wire.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/broadcast_host.h"
#include "core/config.h"
#include "net/message.h"
#include "util/scheduler.h"
#include "util/rng.h"

namespace rbcast::core {

// Wire envelope: which single-source protocol instance a message belongs
// to. (In a real deployment this is a demux field in the packet header.)
struct MuxMessage {
  HostId stream_source;
  ProtocolMessage inner;
};

class MultiSourceNode {
 public:
  // Called on first delivery of each (source, seq) pair at this host.
  using AppDeliverFn =
      std::function<void(HostId source, Seq seq, std::string_view body)>;

  // `sources` lists every broadcast stream in the system (each must be a
  // member of `all_hosts`); a protocol instance is created for each.
  MultiSourceNode(util::Scheduler& scheduler, net::HostEndpoint& endpoint,
                  std::vector<HostId> sources, std::vector<HostId> all_hosts,
                  const Config& config, const util::RngFactory& rngs,
                  AppDeliverFn app_deliver = {});

  MultiSourceNode(const MultiSourceNode&) = delete;
  MultiSourceNode& operator=(const MultiSourceNode&) = delete;

  // Arms every instance's periodic activities.
  void start();

  // Network upcall: demultiplexes to the owning instance.
  void on_delivery(const net::Delivery& delivery);

  // Broadcasts on this host's own stream. Precondition: is_source().
  Seq broadcast(std::string body);

  [[nodiscard]] HostId self() const { return endpoint_.self(); }
  [[nodiscard]] bool is_source() const {
    return instances_.contains(self());
  }

  // The single-source protocol instance for `source`'s stream.
  [[nodiscard]] BroadcastHost& instance(HostId source);
  [[nodiscard]] const BroadcastHost& instance(HostId source) const;

  [[nodiscard]] const std::vector<HostId>& sources() const {
    return sources_;
  }

  // True iff this host holds messages 1..n of every stream, where n is
  // each stream's known maximum.
  [[nodiscard]] std::size_t total_deliveries() const;

 private:
  // Adapter handed to each inner BroadcastHost: wraps outgoing protocol
  // messages into MuxMessage envelopes on the shared endpoint.
  class MuxEndpoint final : public net::HostEndpoint {
   public:
    MuxEndpoint(net::HostEndpoint& real, HostId stream_source)
        : real_(real), stream_source_(stream_source) {}
    [[nodiscard]] HostId self() const override { return real_.self(); }
    void send(HostId to, std::any payload, std::size_t bytes,
              std::string kind, net::TraceId trace_id) override;

   private:
    net::HostEndpoint& real_;
    HostId stream_source_;
  };

  net::HostEndpoint& endpoint_;
  std::vector<HostId> sources_;
  AppDeliverFn app_deliver_;
  // Keyed by source id; iteration order deterministic.
  std::map<HostId, std::unique_ptr<MuxEndpoint>> mux_endpoints_;
  std::map<HostId, std::unique_ptr<BroadcastHost>> instances_;
};

}  // namespace rbcast::core
