// ProtocolCodec — core::ProtocolMessage as a transport::PayloadCodec.
//
// The transport layer sits below core in the layer DAG, so byte-level
// backends cannot name ProtocolMessage; instead they take an abstract
// PayloadCodec and composition roots (rbcast_node, tests) inject this
// one. Encoding defers to core::encode_message; decoding is total and
// returns an empty std::any on malformed input, which BroadcastHost
// counts as a decode error and drops.
#pragma once

#include <any>
#include <cstddef>
#include <string>

#include "transport/transport.h"

namespace rbcast::core {

class ProtocolCodec final : public transport::PayloadCodec {
 public:
  bool encode(const std::any& payload, std::string& out) const override;
  [[nodiscard]] std::any decode(const char* data,
                                std::size_t size) const override;
};

}  // namespace rbcast::core
