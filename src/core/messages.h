// Protocol messages.
//
// Two families share the wire:
//  * data messages — the broadcast stream itself, sequence-numbered by the
//    source; a copy sent to fill a hole in a peer's INFO set is flagged
//    gap_fill (the distinction matters for the acceptance rule and for
//    cost accounting, Section 4.4);
//  * control messages — INFO/parent exchange, the attach handshake and
//    detach notices (Sections 4.2-4.3).
//
// Wire sizes are modelled, not serialized: the simulator charges each
// message its realistic byte count so that cost and congestion results are
// meaningful.
#pragma once

#include <optional>
#include <string>
#include <variant>

#include "core/auth.h"
#include "core/payload.h"
#include "util/ids.h"
#include "util/seq_set.h"

namespace rbcast::core {

using util::Seq;
using util::SeqSet;

// One broadcast data message (possibly redelivered as a gap filler).
struct DataMsg {
  Seq seq{0};
  // Refcounted immutable body: the leader's fan-out and every gap-fill
  // resend share one buffer instead of copying per child (see payload.h).
  Payload body;
  // True when sent to fill a gap rather than as first-time propagation
  // down the tree. Advisory (receivers decide by comparing seq to their
  // own maximum); used for accounting.
  bool gap_fill{false};
  // Section 6 piggybacking: "some control messages that are dispatched by
  // the same host at about the same time can be piggybacked in one
  // packet." When Config::piggyback_info is on, every data message also
  // carries the sender's INFO set and parent pointer, keeping neighbors'
  // MAPs fresh without separate control packets.
  std::optional<std::pair<SeqSet, HostId>> piggyback;
  // Per-source authentication (Config::auth_enabled, see auth.h): digest
  // of the body plus a tag binding (source, seq, digest). Relays forward
  // the source's tag verbatim — they cannot re-sign — so any mutation en
  // route is detected at the next honest hop. Absent in faithful mode.
  std::optional<AuthTag> auth;
};

// Periodic state exchange: "Hosts periodically update one another on the
// current values of their INFO sets" and "cluster neighbors periodically
// inform i of the identities of their new parents" (Section 4.2). Both
// ride in one control message (the paper's Section 6 piggybacking remark).
struct InfoMsg {
  SeqSet info;
  HostId parent;  // sender's current parent; kNoHost when none
};

// "a message is sent to it requesting inclusion in its CHILDREN set"
// (Section 4.2). Carries the requester's INFO set so the new parent can
// back-fill what the child is missing (Section 4.4).
struct AttachRequest {
  SeqSet info;
};

// Acknowledgment of AttachRequest. Carries the parent's INFO and its own
// parent pointer so the child's MAP and p[] start out fresh.
struct AttachAccept {
  SeqSet info;
  HostId parent;
};

// "The old parent, if any, is also notified of the change" (Section 4.2).
struct DetachNotice {};

using ProtocolMessage =
    std::variant<DataMsg, InfoMsg, AttachRequest, AttachAccept, DetachNotice>;

// Modelled wire size (header + payload) in bytes.
[[nodiscard]] std::size_t wire_size(const ProtocolMessage& m);

// --- wire codec -----------------------------------------------------------
//
// Real serialization for the UDP transport (the simulator hands the
// variant through in-process and only charges wire_size()). Layout: a
// 1-byte variant tag, then little-endian fixed-width fields; SeqSets use
// util::SeqSet's own codec, length-prefixed. See PROTOCOL.md "Wire
// format" for the byte layout.
//
// decode_message() is total: truncated input, bad tags, oversized length
// prefixes and invalid SeqSets all return nullopt — datagrams come from
// untrusted peers, so nothing here may assert or index out of bounds.

// Ceiling on one data message body; a hostile length prefix cannot force
// a larger allocation.
inline constexpr std::size_t kMaxBodyBytes = 1 << 20;

[[nodiscard]] std::string encode_message(const ProtocolMessage& m);
[[nodiscard]] std::optional<ProtocolMessage> decode_message(const char* data,
                                                            std::size_t size);

// Metrics label: "data", "gapfill", "info", "attach_req", "attach_ack",
// "detach".
[[nodiscard]] const char* kind_of(const ProtocolMessage& m);

// True for the data family (the rest is control traffic).
[[nodiscard]] bool is_data(const ProtocolMessage& m);

}  // namespace rbcast::core
