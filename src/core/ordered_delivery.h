// In-order delivery adapter.
//
// The paper deliberately relaxes ordering: "it is not essential that
// broadcast messages be always delivered in the order they were
// dispatched. ... this relaxation of requirements ... may improve its
// average delay characteristic" (Section 1). This adapter restores FIFO
// order on top of BroadcastHost for applications that do need it — and
// makes the cost of ordering measurable (bench_ordering compares the two
// delivery disciplines; the measured difference is the paper's claimed
// advantage).
//
// Semantics: messages are released to the application in strict sequence
// order (1, 2, 3, ...). A message arriving out of order is buffered until
// every predecessor has arrived. The upstream protocol already guarantees
// exactly-once per sequence number.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "util/seq_set.h"

namespace rbcast::core {

class OrderedDeliveryAdapter {
 public:
  using DownstreamFn =
      std::function<void(util::Seq seq, std::string_view body)>;

  explicit OrderedDeliveryAdapter(DownstreamFn downstream);

  // Feed point: plug this into BroadcastHost's AppDeliverFn.
  void on_message(util::Seq seq, std::string_view body);

  // Next sequence number the application is waiting for.
  [[nodiscard]] util::Seq next_expected() const { return next_; }
  // Messages held back waiting for a predecessor.
  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }
  // Largest buffer occupancy ever observed (memory cost of ordering).
  [[nodiscard]] std::size_t max_buffered() const { return max_buffered_; }
  // Total messages released downstream.
  [[nodiscard]] std::uint64_t released() const { return released_; }

 private:
  void flush();

  DownstreamFn downstream_;
  util::Seq next_{1};
  std::map<util::Seq, std::string> buffer_;
  std::size_t max_buffered_{0};
  std::uint64_t released_{0};
};

}  // namespace rbcast::core
