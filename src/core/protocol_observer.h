// Observation hooks for protocol-level events.
//
// The network observer (net::NetObserver) sees packets; this one sees
// *protocol* decisions: attachments, detachments, cycle breaks, timeouts,
// rejections. Tests assert on exact event sequences; the event log
// (trace::EventLog) records them for timeline output.
#pragma once

#include <string>

#include "util/ids.h"
#include "util/seq_set.h"

namespace rbcast::core {

class ProtocolObserver {
 public:
  virtual ~ProtocolObserver() = default;

  // `host` sent an attach request to `candidate` under `rule` (one of
  // "I.1".."III.1").
  virtual void on_attach_requested(HostId /*host*/, HostId /*candidate*/,
                                   const std::string& /*rule*/) {}
  // The handshake completed: `host` is now a child of `parent`.
  virtual void on_attached(HostId /*host*/, HostId /*parent*/) {}
  // `host` dropped its parent pointer. `timeout` distinguishes parent
  // liveness expiry from deliberate detachment (cycle break).
  virtual void on_detached(HostId /*host*/, HostId /*old_parent*/,
                           bool /*timeout*/) {}
  // `host` applied the Section 4.3 single-cluster cycle rule.
  virtual void on_cycle_broken(HostId /*host*/) {}
  // An attach request to `candidate` timed out unanswered.
  virtual void on_attach_timeout(HostId /*host*/, HostId /*candidate*/) {}
  // A new-maximum data message from a non-parent was discarded.
  virtual void on_new_max_rejected(HostId /*host*/, HostId /*from*/,
                                   util::Seq /*seq*/) {}
  // First receipt of message `seq` at `host`.
  virtual void on_delivered(HostId /*host*/, util::Seq /*seq*/) {}

  // --- gap filling (Section 4.4) -----------------------------------------
  // `host` offered message `seq` to `to` as a gap fill (periodic rounds
  // and attach-time back-fill — every planner-driven redelivery).
  virtual void on_gapfill_offered(HostId /*host*/, HostId /*to*/,
                                  util::Seq /*seq*/) {}
  // `host` accepted `seq` below its current maximum (a gap actually closed).
  virtual void on_gapfill_accepted(HostId /*host*/, HostId /*from*/,
                                   util::Seq /*seq*/) {}
  // `host` forwarded a just-accepted gap fill onward to neighbor `to`.
  virtual void on_gapfill_relayed(HostId /*host*/, HostId /*to*/,
                                  util::Seq /*seq*/) {}
};

// Broadcasts every protocol event to several observers in registration
// order — lets the event log and the runtime invariant monitor watch the
// same host. Observers are borrowed and must outlive the fanout's
// installation; null observers are skipped at add time.
class ProtocolObserverFanout final : public ProtocolObserver {
 public:
  void add(ProtocolObserver* observer) {
    if (observer != nullptr) observers_.push_back(observer);
  }

  void on_attach_requested(HostId host, HostId candidate,
                           const std::string& rule) override {
    for (ProtocolObserver* o : observers_) {
      o->on_attach_requested(host, candidate, rule);
    }
  }
  void on_attached(HostId host, HostId parent) override {
    for (ProtocolObserver* o : observers_) o->on_attached(host, parent);
  }
  void on_detached(HostId host, HostId old_parent, bool timeout) override {
    for (ProtocolObserver* o : observers_) {
      o->on_detached(host, old_parent, timeout);
    }
  }
  void on_cycle_broken(HostId host) override {
    for (ProtocolObserver* o : observers_) o->on_cycle_broken(host);
  }
  void on_attach_timeout(HostId host, HostId candidate) override {
    for (ProtocolObserver* o : observers_) o->on_attach_timeout(host, candidate);
  }
  void on_new_max_rejected(HostId host, HostId from, util::Seq seq) override {
    for (ProtocolObserver* o : observers_) {
      o->on_new_max_rejected(host, from, seq);
    }
  }
  void on_delivered(HostId host, util::Seq seq) override {
    for (ProtocolObserver* o : observers_) o->on_delivered(host, seq);
  }
  void on_gapfill_offered(HostId host, HostId to, util::Seq seq) override {
    for (ProtocolObserver* o : observers_) o->on_gapfill_offered(host, to, seq);
  }
  void on_gapfill_accepted(HostId host, HostId from, util::Seq seq) override {
    for (ProtocolObserver* o : observers_) {
      o->on_gapfill_accepted(host, from, seq);
    }
  }
  void on_gapfill_relayed(HostId host, HostId to, util::Seq seq) override {
    for (ProtocolObserver* o : observers_) o->on_gapfill_relayed(host, to, seq);
  }

 private:
  std::vector<ProtocolObserver*> observers_;
};

}  // namespace rbcast::core
