// Gap-filling decision logic (Section 4.4), pure over HostState.
//
// Three mechanisms redeliver lost messages:
//  1. attach-time back-fill — a new parent forwards everything the child is
//     missing (planned by plan_attach_backfill);
//  2. periodic neighbor gap fill — "every host periodically tries to fill
//     its parent graph neighbors' gaps" (plan_neighbor_gapfill);
//  3. periodic non-neighbor gap fill — the extension that handles the
//     Figure 4.1 partition scenario (plan_far_gapfill).
//
// A crucial constraint shapes the plans: a host accepts a message with a
// sequence number above its current maximum only from its parent. So we may
// push *new maxima* only to our own children; toward anyone else (our
// parent, or a non-neighbor) offers are capped at the recipient's known
// maximum — "they do not alter the < order among INFO sets".
#pragma once

#include <vector>

#include "core/host_state.h"

namespace rbcast::core {

// Every planner takes an optional `recently_offered` overlay: sequence
// numbers already offered to this peer within Config::gapfill_suppress_period.
// They are treated as if the peer's MAP contained them (an optimistic,
// time-bounded fold — see the Config field for the rationale), except that
// the recipient-max cap is always computed from the *actual* MAP: an offer
// must never be pushed above the max the recipient would accept.

// Messages to forward to a newly attached child `child`, whose INFO set
// `child_info` arrived in its AttachRequest. Uncapped (we are its parent
// now), limited to `burst`, restricted to bodies we still hold.
[[nodiscard]] std::vector<Seq> plan_attach_backfill(
    const HostState& state, const SeqSet& child_info, std::size_t burst,
    const SeqSet* recently_offered = nullptr);

// Periodic plan for a parent-graph neighbor `j`. If `j_is_child`, new
// maxima may be included; otherwise (j is our parent) offers are capped at
// map(j)'s maximum.
[[nodiscard]] std::vector<Seq> plan_neighbor_gapfill(
    const HostState& state, HostId j, bool j_is_child, std::size_t burst,
    const SeqSet* recently_offered = nullptr);

// Periodic plan for a non-neighbor `j` (always capped at j's known max).
[[nodiscard]] std::vector<Seq> plan_far_gapfill(
    const HostState& state, HostId j, std::size_t burst,
    const SeqSet* recently_offered = nullptr);

}  // namespace rbcast::core
