// Payload — refcounted immutable message body for zero-copy fan-out.
//
// A broadcast body is written once (at the source, or when a relay decodes
// it off the wire) and then read many times: the cluster leader re-sends
// the same bytes to every child, the host state retains it for gap fills,
// and the app-delivery callback observes it. Before this type each of
// those was a std::string copy — O(children) allocations per message on
// the relay hot path. Payload wraps the bytes in a
// shared_ptr<const vector<byte>> so every retransmission, gap-fill offer,
// and state-table entry shares one immutable buffer; "copying" a Payload
// bumps a refcount.
//
// Implicit construction from the string family keeps call sites natural
// (message literals in tests, decoded wire strings in the codec). Reads go
// through view(): a string_view over the bytes, valid as long as any
// Payload referencing the buffer lives.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace rbcast::core {

class Payload {
 public:
  Payload() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): body literals and decoded
  // strings convert implicitly by design — see header comment.
  Payload(std::string_view bytes) { assign(bytes); }
  // NOLINTNEXTLINE(google-explicit-constructor)
  Payload(const std::string& bytes) { assign(bytes); }
  // NOLINTNEXTLINE(google-explicit-constructor)
  Payload(const char* bytes) { assign(bytes); }

  [[nodiscard]] std::size_t size() const {
    return data_ ? data_->size() : 0;
  }
  [[nodiscard]] bool empty() const { return size() == 0; }

  [[nodiscard]] std::string_view view() const {
    if (!data_ || data_->empty()) return {};
    return {reinterpret_cast<const char*>(data_->data()), data_->size()};
  }

  [[nodiscard]] std::string str() const { return std::string(view()); }

  // Shallow identity: true when two Payloads share the same buffer.
  [[nodiscard]] bool shares_buffer_with(const Payload& other) const {
    return data_ != nullptr && data_ == other.data_;
  }

  friend bool operator==(const Payload& a, const Payload& b) {
    return a.view() == b.view();
  }

 private:
  void assign(std::string_view bytes) {
    if (bytes.empty()) return;
    const auto* p = reinterpret_cast<const std::byte*>(bytes.data());
    data_ = std::make_shared<const std::vector<std::byte>>(p,
                                                           p + bytes.size());
  }

  std::shared_ptr<const std::vector<std::byte>> data_;
};

}  // namespace rbcast::core
