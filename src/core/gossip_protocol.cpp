#include "core/gossip_protocol.h"

#include <algorithm>

#include "util/assert.h"

namespace rbcast::core {

namespace {
constexpr std::size_t kHeaderBytes = 24;
}

std::size_t wire_size(const GossipMessage& m) {
  if (const auto* digest = std::get_if<GossipDigest>(&m)) {
    return kHeaderBytes + 1 + digest->info.wire_size();
  }
  return kHeaderBytes + 8 + std::get<GossipData>(m).body.size();
}

const char* kind_of(const GossipMessage& m) {
  return std::holds_alternative<GossipDigest>(m) ? "gossip_digest" : "data";
}

GossipNode::GossipNode(util::Scheduler& scheduler, net::HostEndpoint& endpoint,
                       HostId source, std::vector<HostId> all_hosts,
                       GossipConfig config, util::Rng rng,
                       AppDeliverFn app_deliver)
    : scheduler_(scheduler),
      endpoint_(endpoint),
      source_(source),
      config_(config),
      rng_(rng),
      app_deliver_(std::move(app_deliver)) {
  RBCAST_CHECK_ARG(config_.fanout >= 1, "gossip fanout must be >= 1");
  for (HostId h : all_hosts) {
    if (h != endpoint_.self()) peers_.push_back(h);
  }
  round_task_ = std::make_unique<util::PeriodicTask>(
      scheduler_, config_.gossip_period, [this] { gossip_round(); });
}

void GossipNode::start() {
  round_task_->start(util::phase_jitter(rng_, config_.gossip_period));
}

Seq GossipNode::broadcast(std::string body) {
  RBCAST_ASSERT_MSG(is_source(), "broadcast() on a non-source gossip node");
  const Seq seq = next_seq_++;
  info_.insert(seq);
  bodies_.emplace(seq, std::move(body));
  ++counters_.deliveries;
  if (app_deliver_) app_deliver_(seq, bodies_.at(seq));
  return seq;
}

void GossipNode::send(HostId to, GossipMessage m) {
  const std::size_t bytes = wire_size(m);
  const char* kind = kind_of(m);
  endpoint_.send(to, std::any(std::move(m)), bytes, kind);
}

void GossipNode::gossip_round() {
  if (peers_.empty() || info_.empty()) return;
  ++counters_.rounds;
  // Fanout random peers, without replacement within the round.
  std::vector<HostId> pool = peers_;
  const int picks = std::min<int>(config_.fanout,
                                  static_cast<int>(pool.size()));
  for (int i = 0; i < picks; ++i) {
    const auto pick = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1));
    const HostId peer = pool[pick];
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
    send(peer, GossipDigest{info_, /*reply=*/false});
    ++counters_.digests_sent;
  }
}

void GossipNode::on_delivery(const net::Delivery& delivery) {
  const auto* message = std::any_cast<GossipMessage>(&delivery.payload);
  RBCAST_ASSERT_MSG(message != nullptr,
                    "GossipNode received a foreign payload");
  if (const auto* digest = std::get_if<GossipDigest>(message)) {
    handle_digest(delivery.from, *digest);
  } else {
    handle_data(delivery.from, std::get<GossipData>(*message));
  }
}

void GossipNode::handle_digest(HostId from, const GossipDigest& digest) {
  // Push: everything we have that the sender lacks.
  push_missing(from, digest.info);
  // Pull: if the sender is ahead of us somewhere, answer with our digest
  // (once — replies are not answered, terminating the exchange).
  if (!digest.reply && !digest.info.missing_from(info_, 1).empty()) {
    send(from, GossipDigest{info_, /*reply=*/true});
    ++counters_.digests_sent;
  }
}

void GossipNode::push_missing(HostId to, const SeqSet& peer_info) {
  for (Seq seq : info_.missing_from(peer_info, config_.push_burst)) {
    auto it = bodies_.find(seq);
    if (it == bodies_.end()) continue;
    send(to, GossipData{seq, it->second});
    ++counters_.pushes_sent;
  }
}

void GossipNode::handle_data(HostId, const GossipData& data) {
  if (!info_.insert(data.seq)) {
    ++counters_.duplicates;
    return;
  }
  bodies_.emplace(data.seq, data.body);
  ++counters_.deliveries;
  if (app_deliver_) app_deliver_(data.seq, data.body);
}

}  // namespace rbcast::core
