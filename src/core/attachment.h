// The attachment procedure (Sections 4.2-4.3) as pure decision logic.
//
// "At the heart of the algorithm is the attachment procedure, which is
// periodically activated at every host. The purpose of this procedure is to
// make sure that the host is attached to a 'good' parent, and if that is
// not the case, find a better one."
//
// The procedure has three cases, chosen by where the current parent sits:
//
//   Case I   — no parent:
//     (1) attach to an in-cluster leader with a greater INFO set
//     (2) attach to an in-cluster leader with an equal-max INFO set and a
//         greater static order number
//     (3) attach to an out-of-cluster host with a greater INFO set
//         (the host thereby becomes a cluster leader)
//   Case II  — parent in a different cluster (the host is a leader):
//     (1),(2) as case I (consolidate multiple leaders into one)
//     (3) attach to an out-of-cluster host whose INFO set exceeds the
//         *current parent's* (the delay-minimization rule)
//   Case III — parent in the same cluster:
//     (1) attach directly to the ancestor (other than the parent) that is
//         an in-cluster leader with an INFO set >= one's own
//     plus cycle detection: if following parent pointers leads back to
//     self within one cluster, the member with the highest static order
//     must detach (Section 4.3's special rule).
//
// These functions only *decide*; BroadcastHost performs the attach
// handshake. Keeping them pure makes every option unit-testable against a
// hand-built HostState.
#pragma once

#include <set>
#include <string>

#include "core/host_state.h"

namespace rbcast::core {

struct AttachmentDecision {
  enum class Action {
    kNone,        // current parent is fine (or no candidate exists)
    kAttach,      // request attachment to `candidate`
    kBreakCycle,  // single-cluster cycle detected and we have the highest
                  // order on it: detach, then re-run (case I) immediately
  };

  Action action{Action::kNone};
  HostId candidate{kNoHost};
  // Which rule fired: "I.1", "I.2", "I.3", "II.3", "III.1", "cycle".
  // Empty for kNone. For observability and tests.
  std::string rule;
};

// Runs the candidate selection for host `state.self()`.
//
// `excluded` holds hosts that recently failed the attach handshake
// ("If the acknowledgment ... times out, the procedure is repeated to find
// another candidate"); they are skipped this round.
// `parent_switch_margin` implements Config::parent_switch_margin for
// case II option (3).
[[nodiscard]] AttachmentDecision run_attachment(
    const HostState& state, const std::set<HostId>& excluded,
    Seq parent_switch_margin = 0);

}  // namespace rbcast::core
