// Epidemic (anti-entropy) baseline — the alternative the paper points to
// for settings where hosts do not know each other: "See [Deme87] for a
// possible solution" (Section 2, citing Demers et al., "Epidemic
// Algorithms for Replicated Database Management", PODC 1987).
//
// Implemented as classic push-pull anti-entropy over the same
// nonprogrammable-server network: each host periodically picks a few
// random peers and sends its INFO digest; a digest recipient pushes
// messages the sender lacks and, if it is itself behind, answers with its
// own digest (one round of ping-pong, flagged to terminate). The source
// simply records its stream; dissemination is entirely epidemic.
//
// Gossip is robust and membership-light but *cluster-oblivious*: peers are
// picked uniformly, so most exchanges cross expensive links. The benches
// use it as a second baseline against the paper's cluster tree.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "net/message.h"
#include "util/scheduler.h"
#include "util/rng.h"
#include "util/seq_set.h"

namespace rbcast::core {

using util::Seq;
using util::SeqSet;

// Digest of the sender's INFO set. `reply` marks the second leg of a
// push-pull exchange (a reply digest is never answered with another
// digest, which terminates the ping-pong).
struct GossipDigest {
  SeqSet info;
  bool reply{false};
};

// One message of the stream, pushed to a peer that lacks it.
struct GossipData {
  Seq seq{0};
  std::string body;
};

using GossipMessage = std::variant<GossipDigest, GossipData>;

[[nodiscard]] std::size_t wire_size(const GossipMessage& m);
[[nodiscard]] const char* kind_of(const GossipMessage& m);

struct GossipConfig {
  // Anti-entropy round period.
  util::Duration gossip_period{util::seconds(1)};
  // Peers contacted per round.
  int fanout{2};
  // Max data messages pushed to one peer per exchange.
  std::size_t push_burst{16};
  std::size_t data_bytes{256};
};

class GossipNode {
 public:
  using AppDeliverFn = std::function<void(Seq, const std::string& body)>;

  GossipNode(util::Scheduler& scheduler, net::HostEndpoint& endpoint,
             HostId source, std::vector<HostId> all_hosts,
             GossipConfig config, util::Rng rng,
             AppDeliverFn app_deliver = {});

  GossipNode(const GossipNode&) = delete;
  GossipNode& operator=(const GossipNode&) = delete;

  void start();

  // Source only.
  Seq broadcast(std::string body);

  void on_delivery(const net::Delivery& delivery);

  [[nodiscard]] HostId self() const { return endpoint_.self(); }
  [[nodiscard]] bool is_source() const { return self() == source_; }
  [[nodiscard]] const SeqSet& info() const { return info_; }

  struct Counters {
    std::uint64_t rounds{0};
    std::uint64_t digests_sent{0};
    std::uint64_t pushes_sent{0};
    std::uint64_t deliveries{0};
    std::uint64_t duplicates{0};
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  void gossip_round();
  void handle_digest(HostId from, const GossipDigest& digest);
  void handle_data(HostId from, const GossipData& data);
  void push_missing(HostId to, const SeqSet& peer_info);
  void send(HostId to, GossipMessage m);

  util::Scheduler& scheduler_;
  net::HostEndpoint& endpoint_;
  HostId source_;
  std::vector<HostId> peers_;  // everyone but self
  GossipConfig config_;
  util::Rng rng_;
  AppDeliverFn app_deliver_;

  SeqSet info_;
  std::map<Seq, std::string> bodies_;
  Seq next_seq_{1};
  Counters counters_;
  std::unique_ptr<util::PeriodicTask> round_task_;
};

}  // namespace rbcast::core
