#include "core/basic_protocol.h"

#include <algorithm>

#include "util/assert.h"

namespace rbcast::core {

namespace {
constexpr std::size_t kHeaderBytes = 24;
}

std::size_t wire_size(const BasicMessage& m) {
  if (const auto* data = std::get_if<BasicData>(&m)) {
    return kHeaderBytes + 8 + data->body.size();
  }
  return kHeaderBytes + 8;
}

const char* kind_of(const BasicMessage& m) {
  return std::holds_alternative<BasicData>(m) ? "data" : "ack";
}

BasicSource::BasicSource(util::Scheduler& scheduler,
                         net::HostEndpoint& endpoint,
                         std::vector<HostId> all_hosts, BasicConfig config,
                         util::Rng rng)
    : scheduler_(scheduler),
      endpoint_(endpoint),
      config_(config),
      rng_(rng) {
  for (HostId h : all_hosts) {
    if (h != endpoint_.self()) destinations_.push_back(h);
  }
  retransmit_task_ = std::make_unique<util::PeriodicTask>(
      scheduler_, config_.retransmit_period, [this] { retransmit_round(); });
}

void BasicSource::start() {
  retransmit_task_->start(
      util::phase_jitter(rng_, config_.retransmit_period));
}

Seq BasicSource::broadcast(std::string body) {
  const Seq seq = next_seq_++;
  auto [it, fresh] = bodies_.emplace(seq, std::move(body));
  RBCAST_ASSERT(fresh);
  auto& waiting = unacked_[seq];
  for (HostId h : destinations_) {
    waiting.insert(h);
    endpoint_.send(h, std::any(BasicMessage(BasicData{seq, it->second})),
                   wire_size(BasicMessage(BasicData{seq, it->second})),
                   "data", net::make_trace_id(endpoint_.self(), seq));
    ++counters_.first_sends;
  }
  if (waiting.empty()) {  // degenerate single-host network
    unacked_.erase(seq);
    bodies_.erase(seq);
  }
  return seq;
}

void BasicSource::on_delivery(const net::Delivery& delivery) {
  const auto* message = std::any_cast<BasicMessage>(&delivery.payload);
  RBCAST_ASSERT_MSG(message != nullptr,
                    "BasicSource received a foreign payload");
  const auto* ack = std::get_if<BasicAck>(message);
  if (ack == nullptr) return;  // the source ignores stray data copies
  ++counters_.acks_received;
  auto it = unacked_.find(ack->seq);
  if (it == unacked_.end()) return;
  it->second.erase(delivery.from);
  if (it->second.empty()) {
    unacked_.erase(it);
    bodies_.erase(ack->seq);  // everyone has it; retransmission state done
  }
}

std::size_t BasicSource::pending() const {
  std::size_t n = 0;
  for (const auto& [seq, hosts] : unacked_) n += hosts.size();
  return n;
}

bool BasicSource::fully_acked(Seq seq) const {
  return seq < next_seq_ && !unacked_.contains(seq);
}

void BasicSource::retransmit_round() {
  std::size_t budget = config_.retransmit_burst;
  for (const auto& [seq, hosts] : unacked_) {
    const std::string& body = bodies_.at(seq);
    for (HostId h : hosts) {
      if (budget == 0) return;
      --budget;
      BasicMessage m{BasicData{seq, body}};
      endpoint_.send(h, std::any(m), wire_size(m), "data_retx",
                     net::make_trace_id(endpoint_.self(), seq));
      ++counters_.retransmissions;
    }
  }
}

BasicReceiver::BasicReceiver(net::HostEndpoint& endpoint,
                             AppDeliverFn app_deliver)
    : endpoint_(endpoint), app_deliver_(std::move(app_deliver)) {}

void BasicReceiver::on_delivery(const net::Delivery& delivery) {
  const auto* message = std::any_cast<BasicMessage>(&delivery.payload);
  RBCAST_ASSERT_MSG(message != nullptr,
                    "BasicReceiver received a foreign payload");
  const auto* data = std::get_if<BasicData>(message);
  if (data == nullptr) return;

  // Acknowledge every copy: an earlier ack may have been lost.
  BasicMessage ack{BasicAck{data->seq}};
  endpoint_.send(delivery.from, std::any(ack), wire_size(ack), "ack");
  ++counters_.acks_sent;

  if (received_.insert(data->seq)) {
    ++counters_.deliveries;
    if (app_deliver_) app_deliver_(data->seq, data->body);
  } else {
    ++counters_.duplicates;
  }
}

}  // namespace rbcast::core
