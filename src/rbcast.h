// rbcast — reliable broadcast in networks with nonprogrammable servers.
//
// Umbrella header: a full reproduction of Garcia-Molina, Kogan & Lynch,
// "Reliable Broadcast in Networks with Nonprogrammable Servers",
// ICDCS 1988.
//
// Layers (bottom to top):
//   rbcast::util    — sequence sets (INFO sets), rng, stats, ids
//   rbcast::sim     — deterministic discrete-event simulator
//   rbcast::topo    — network topologies (clusters, paper figures)
//   rbcast::net     — the nonprogrammable-server network substrate
//   rbcast::core    — the paper's protocol + the basic baseline
//   rbcast::trace   — metrics, convergence probes, trace export/analysis
//   rbcast::harness — one-call experiment wiring
//
// Quickstart: see examples/quickstart.cpp.
#pragma once

#include "core/attachment.h"
#include "core/basic_protocol.h"
#include "core/broadcast_host.h"
#include "core/config.h"
#include "core/gap_filling.h"
#include "core/gossip_protocol.h"
#include "core/host_state.h"
#include "core/messages.h"
#include "core/multi_source.h"
#include "core/ordered_delivery.h"
#include "harness/chaos.h"
#include "harness/experiment.h"
#include "harness/invariant_monitor.h"
#include "harness/workload.h"
#include "model/checker.h"
#include "model/invariants.h"
#include "model/model_node.h"
#include "net/fault_plan.h"
#include "net/link.h"
#include "net/message.h"
#include "net/network.h"
#include "net/routing.h"
#include "net/server.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "topo/generators.h"
#include "topo/topology.h"
#include "trace/admin_server.h"
#include "trace/convergence.h"
#include "trace/dot_export.h"
#include "trace/event_log.h"
#include "trace/exposition.h"
#include "trace/metric_sampler.h"
#include "trace/metrics.h"
#include "trace/net_tap.h"
#include "trace/trace_reader.h"
#include "trace/trace_sink.h"
#include "util/ids.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/seq_set.h"
#include "util/stats.h"
#include "util/table.h"
