// rbcast_sim — command-line scenario runner.
//
// Builds a clustered WAN, runs either the paper's protocol or the basic
// baseline over a message stream with optional faults, and reports
// delivery, latency, cost and convergence results — as a table or as CSV
// for scripting.
//
// Examples:
//   rbcast_sim --clusters 4 --hosts 3 --messages 50
//   rbcast_sim --protocol basic --loss 0.1 --messages 30
//   rbcast_sim --clusters 3 --shape line --partition-at 10 --csv
//              --partition-heal 40 --messages 60
//   rbcast_sim --flap --messages 100 --seed 7 --verbose
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "rbcast.h"

using namespace rbcast;

namespace {

struct CliOptions {
  int clusters = 3;
  int hosts = 3;
  topo::TrunkShape shape = topo::TrunkShape::kRing;
  bool arpanet = false;
  harness::ProtocolKind kind = harness::ProtocolKind::kPaper;
  int messages = 30;
  int interval_ms = 500;
  harness::ArrivalProcess arrivals = harness::ArrivalProcess::kUniform;
  int burst_size = 5;
  double loss = 0.0;
  double duplication = 0.0;
  std::uint64_t seed = 1;
  double partition_at = -1.0;    // seconds; <0 = no partition
  double partition_heal = -1.0;  // seconds
  bool flap = false;
  double deadline_s = 600.0;
  bool csv = false;
  bool verbose = false;
  std::string dot_prefix;  // write <prefix>.topology.dot / .parents.dot
  std::string csv_prefix;  // write <prefix>.counters.csv / .latencies.csv
  std::string trace_out;     // JSONL trace file (rbcast_trace reads it)
  std::string chrome_trace;  // Chrome/Perfetto trace_event JSON file
  int sample_period_ms = 1000;  // metric time-series period when tracing
  int batch_flush_ms = 0;       // 0 = coalescing data plane off
  std::string chaos_spec;       // replay a chaos spec instead (rbcast_chaos)
  std::uint64_t chaos_seed = 1;
};

// Deterministic replay of a chaos reproducer (rbcast_chaos repro.json):
// re-runs the spec under the invariant monitor and reports the violations.
// Exit 0 = clean, 1 = violations reproduced.
int run_chaos_replay(const CliOptions& cli) {
  harness::ChaosSpec spec;
  try {
    spec = harness::load_chaos_spec(cli.chaos_spec);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  std::ofstream trace_file;
  std::unique_ptr<trace::JsonlSink> jsonl_sink;
  if (!cli.trace_out.empty()) {
    trace_file.open(cli.trace_out);
    if (!trace_file) {
      std::cerr << "cannot open " << cli.trace_out << " for writing\n";
      return 2;
    }
    jsonl_sink = std::make_unique<trace::JsonlSink>(trace_file);
  }
  const harness::ChaosRunResult result =
      harness::run_chaos(spec, cli.chaos_seed, jsonl_sink.get());
  if (jsonl_sink != nullptr) {
    jsonl_sink->close();
    std::cerr << "wrote " << cli.trace_out << "\n";
  }
  std::cout << (cli.csv ? "# " : "") << result.manifest
            << " chaos_spec=" << cli.chaos_spec
            << " chaos_seed=" << cli.chaos_seed << "\n";
  std::cout << "delivered everywhere: " << (result.delivered_all ? "yes" : "NO")
            << "  completion: " << result.completion_s << "s\n";
  if (!result.violated()) {
    std::cout << "invariants: all hold\n";
    return 0;
  }
  std::cout << "invariant violations:\n";
  for (const auto& v : result.violations) {
    std::cout << "  [" << v.invariant << "] t=" << sim::to_seconds(v.at)
              << "s: " << v.description << "\n";
  }
  return 1;
}

void usage() {
  std::cout <<
      "rbcast_sim — reliable broadcast scenario runner\n\n"
      "topology:\n"
      "  --clusters N       number of clusters (default 3)\n"
      "  --hosts N          hosts per cluster (default 3)\n"
      "  --shape S          trunk shape: line|ring|star|random (default ring)\n"
      "  --arpanet          use the stylized c.1980 ARPANET map instead\n"
      "network faults:\n"
      "  --loss P           trunk loss probability [0,1) (default 0)\n"
      "  --dup P            trunk duplication probability (default 0)\n"
      "  --partition-at T   cut trunk 0 at T seconds\n"
      "  --partition-heal T repair it at T seconds\n"
      "  --flap             all trunks flap (up ~10s / down ~5s) while the\n"
      "                     stream runs\n"
      "workload:\n"
      "  --protocol P       paper|basic|gossip (default paper)\n"
      "  --messages N       stream length (default 30)\n"
      "  --interval-ms N    spacing between broadcasts (default 500)\n"
      "  --arrivals A       uniform|poisson|bursty|sustained\n"
      "                     (default uniform)\n"
      "  --burst N          messages per burst for bursty (default 5)\n"
      "run control:\n"
      "  --dot PREFIX       write PREFIX.topology.dot and\n"
      "                     PREFIX.parents.dot (Graphviz) at the end\n"
      "  --metrics-csv P    write P.counters.csv and P.latencies.csv\n"
      "  --trace-out F      stream a JSONL trace of the run to F\n"
      "                     (analyze with rbcast_trace)\n"
      "  --chrome-trace F   also write a Chrome/Perfetto trace_event file\n"
      "  --batch-flush-ms N coalesce same-destination frames for up to\n"
      "                     N ms (the batched data plane; default 0 =\n"
      "                     off). Coalescer counters then appear in the\n"
      "                     trace's \"registry\" metric records\n"
      "  --sample-period-ms N\n"
      "                     metric time-series period when tracing\n"
      "                     (default 1000; 0 disables sampling)\n"
      "  --seed N           experiment seed (default 1)\n"
      "  --deadline T       give up after T virtual seconds (default 600)\n"
      "  --chaos-spec F     replay a chaos spec/reproducer under the\n"
      "                     invariant monitor (ignores topology/workload\n"
      "                     flags; exit 1 if violations reproduce)\n"
      "  --chaos-seed N     seed for --chaos-spec (default 1)\n"
      "  --csv              machine-readable output\n"
      "  --verbose          protocol event log on stderr\n"
      "  --help             this text\n";
}

bool parse(int argc, char** argv, CliOptions& options) {
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = nullptr;
    if (arg == "--help" || arg == "-h") {
      usage();
      std::exit(0);
    } else if (arg == "--csv") {
      options.csv = true;
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--flap") {
      options.flap = true;
    } else if (arg == "--arpanet") {
      options.arpanet = true;
    } else if (arg == "--clusters") {
      if ((value = need_value(i)) == nullptr) return false;
      options.clusters = std::atoi(value);
    } else if (arg == "--hosts") {
      if ((value = need_value(i)) == nullptr) return false;
      options.hosts = std::atoi(value);
    } else if (arg == "--shape") {
      if ((value = need_value(i)) == nullptr) return false;
      const std::string s = value;
      if (s == "line") {
        options.shape = topo::TrunkShape::kLine;
      } else if (s == "ring") {
        options.shape = topo::TrunkShape::kRing;
      } else if (s == "star") {
        options.shape = topo::TrunkShape::kStar;
      } else if (s == "random") {
        options.shape = topo::TrunkShape::kRandomTree;
      } else {
        std::cerr << "unknown shape: " << s << "\n";
        return false;
      }
    } else if (arg == "--protocol") {
      if ((value = need_value(i)) == nullptr) return false;
      const std::string p = value;
      if (p == "paper") {
        options.kind = harness::ProtocolKind::kPaper;
      } else if (p == "basic") {
        options.kind = harness::ProtocolKind::kBasic;
      } else if (p == "gossip") {
        options.kind = harness::ProtocolKind::kGossip;
      } else {
        std::cerr << "unknown protocol: " << p << "\n";
        return false;
      }
    } else if (arg == "--messages") {
      if ((value = need_value(i)) == nullptr) return false;
      options.messages = std::atoi(value);
    } else if (arg == "--interval-ms") {
      if ((value = need_value(i)) == nullptr) return false;
      options.interval_ms = std::atoi(value);
    } else if (arg == "--arrivals") {
      if ((value = need_value(i)) == nullptr) return false;
      const std::string a = value;
      if (a == "uniform") {
        options.arrivals = harness::ArrivalProcess::kUniform;
      } else if (a == "poisson") {
        options.arrivals = harness::ArrivalProcess::kPoisson;
      } else if (a == "bursty") {
        options.arrivals = harness::ArrivalProcess::kBursty;
      } else if (a == "sustained") {
        options.arrivals = harness::ArrivalProcess::kSustained;
      } else {
        std::cerr << "unknown arrival process: " << a << "\n";
        return false;
      }
    } else if (arg == "--burst") {
      if ((value = need_value(i)) == nullptr) return false;
      options.burst_size = std::atoi(value);
    } else if (arg == "--loss") {
      if ((value = need_value(i)) == nullptr) return false;
      options.loss = std::atof(value);
    } else if (arg == "--dup") {
      if ((value = need_value(i)) == nullptr) return false;
      options.duplication = std::atof(value);
    } else if (arg == "--dot") {
      if ((value = need_value(i)) == nullptr) return false;
      options.dot_prefix = value;
    } else if (arg == "--metrics-csv") {
      if ((value = need_value(i)) == nullptr) return false;
      options.csv_prefix = value;
    } else if (arg == "--trace-out") {
      if ((value = need_value(i)) == nullptr) return false;
      options.trace_out = value;
    } else if (arg == "--chrome-trace") {
      if ((value = need_value(i)) == nullptr) return false;
      options.chrome_trace = value;
    } else if (arg == "--batch-flush-ms") {
      if ((value = need_value(i)) == nullptr) return false;
      options.batch_flush_ms = std::atoi(value);
    } else if (arg == "--sample-period-ms") {
      if ((value = need_value(i)) == nullptr) return false;
      options.sample_period_ms = std::atoi(value);
    } else if (arg == "--seed") {
      if ((value = need_value(i)) == nullptr) return false;
      options.seed = std::strtoull(value, nullptr, 10);
    } else if (arg == "--chaos-spec") {
      if ((value = need_value(i)) == nullptr) return false;
      options.chaos_spec = value;
    } else if (arg == "--chaos-seed") {
      if ((value = need_value(i)) == nullptr) return false;
      options.chaos_seed = std::strtoull(value, nullptr, 10);
    } else if (arg == "--partition-at") {
      if ((value = need_value(i)) == nullptr) return false;
      options.partition_at = std::atof(value);
    } else if (arg == "--partition-heal") {
      if ((value = need_value(i)) == nullptr) return false;
      options.partition_heal = std::atof(value);
    } else if (arg == "--deadline") {
      if ((value = need_value(i)) == nullptr) return false;
      options.deadline_s = std::atof(value);
    } else {
      std::cerr << "unknown flag: " << arg << " (try --help)\n";
      return false;
    }
  }
  if (options.clusters < 1 || options.hosts < 1 || options.messages < 0) {
    std::cerr << "invalid topology/workload parameters\n";
    return false;
  }
  if ((options.partition_at >= 0) != (options.partition_heal >= 0)) {
    std::cerr << "--partition-at and --partition-heal go together\n";
    return false;
  }
  if (options.sample_period_ms < 0) {
    std::cerr << "--sample-period-ms must be >= 0\n";
    return false;
  }
  if (options.batch_flush_ms < 0) {
    std::cerr << "--batch-flush-ms must be >= 0\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!parse(argc, argv, cli)) return 2;

  if (cli.verbose) {
    util::Logger::instance().set_level(util::LogLevel::kInfo);
  }

  if (!cli.chaos_spec.empty()) return run_chaos_replay(cli);

  topo::Topology topology;
  std::vector<LinkId> trunks;
  if (cli.arpanet) {
    topo::Arpanet arpa = topo::make_arpanet();
    for (LinkId trunk : arpa.trunks) {
      auto params = arpa.topology.link(trunk).params;
      params.loss_probability = cli.loss;
      params.duplication_probability = cli.duplication;
      arpa.topology.set_link_params(trunk, params);
    }
    topology = std::move(arpa.topology);
    trunks = std::move(arpa.trunks);
  } else {
    topo::ClusteredWanOptions wan_options;
    wan_options.clusters = cli.clusters;
    wan_options.hosts_per_cluster = cli.hosts;
    wan_options.shape = cli.shape;
    wan_options.expensive.loss_probability = cli.loss;
    wan_options.expensive.duplication_probability = cli.duplication;
    wan_options.cheap.loss_probability = cli.loss / 5.0;
    wan_options.seed = cli.seed;
    topo::Wan wan = make_clustered_wan(wan_options);
    topology = std::move(wan.topology);
    trunks = std::move(wan.trunks);
  }

  harness::ScenarioOptions options;
  options.protocol_kind = cli.kind;
  options.seed = cli.seed;
  options.protocol.batch_flush_delay = sim::milliseconds(cli.batch_flush_ms);
  harness::Experiment e(std::move(topology), options);

  // The reproduction line: everything needed to rerun this exact run.
  // Also the first record of every trace file.
  std::cout << (cli.csv ? "# " : "") << trace::manifest_line(e.manifest())
            << "\n";

  // --- trace export --------------------------------------------------------

  std::ofstream trace_file;
  std::ofstream chrome_file;
  std::unique_ptr<trace::JsonlSink> jsonl_sink;
  std::unique_ptr<trace::ChromeTraceSink> chrome_sink;
  trace::MultiSink trace_fanout;
  if (!cli.trace_out.empty()) {
    trace_file.open(cli.trace_out);
    if (!trace_file) {
      std::cerr << "cannot open " << cli.trace_out << " for writing\n";
      return 2;
    }
    jsonl_sink = std::make_unique<trace::JsonlSink>(trace_file);
    trace_fanout.add(jsonl_sink.get());
  }
  if (!cli.chrome_trace.empty()) {
    chrome_file.open(cli.chrome_trace);
    if (!chrome_file) {
      std::cerr << "cannot open " << cli.chrome_trace << " for writing\n";
      return 2;
    }
    chrome_sink = std::make_unique<trace::ChromeTraceSink>(chrome_file);
    trace_fanout.add(chrome_sink.get());
  }
  if (jsonl_sink != nullptr || chrome_sink != nullptr) {
    e.set_trace_sink(&trace_fanout);
    if (cli.sample_period_ms > 0) {
      e.enable_metric_sampling(sim::milliseconds(cli.sample_period_ms));
    }
  }

  if (cli.partition_at >= 0 && !trunks.empty()) {
    e.faults().partition_window({trunks[0]},
                                sim::from_seconds(cli.partition_at),
                                sim::from_seconds(cli.partition_heal));
  }
  if (cli.flap && !trunks.empty()) {
    e.faults().flapping(trunks, sim::seconds(10), sim::seconds(5),
                        sim::from_seconds(cli.deadline_s), e.rngs());
  }

  e.start();
  harness::WorkloadOptions workload;
  workload.process = cli.arrivals;
  workload.messages = cli.messages;
  workload.interval = sim::milliseconds(cli.interval_ms);
  workload.burst_size = cli.burst_size;
  workload.first_at = sim::seconds(1);
  schedule_workload(e, workload, util::Rng(cli.seed));
  const sim::TimePoint done =
      e.run_until_delivered(sim::from_seconds(cli.deadline_s));

  // Close out the trace: one final metric sample so every series covers
  // the full run, then flush/finalize the backends.
  if (e.sampler() != nullptr) e.sampler()->sample_now();
  trace_fanout.close();
  if (!cli.trace_out.empty()) {
    std::cerr << "wrote " << cli.trace_out << "\n";
  }
  if (!cli.chrome_trace.empty()) {
    std::cerr << "wrote " << cli.chrome_trace
              << " (load in ui.perfetto.dev)\n";
  }

  // --- report --------------------------------------------------------------

  const auto& metrics = e.metrics();
  const auto latency = metrics.all_latencies();
  const bool complete = e.all_delivered();

  util::Table summary({"metric", "value"});
  summary.row().cell("network").cell(e.topology().describe());
  summary.row().cell("protocol").cell(
      cli.kind == harness::ProtocolKind::kPaper
          ? "paper"
          : (cli.kind == harness::ProtocolKind::kBasic ? "basic" : "gossip"));
  summary.row().cell("messages").cell(
      static_cast<std::int64_t>(cli.messages));
  summary.row().cell("delivered everywhere").cell(complete ? "yes" : "NO");
  summary.row().cell("completion time (s)").cell(sim::to_seconds(done), 2);
  summary.row().cell("mean delay (s)").cell(latency.mean(), 4);
  summary.row().cell("p95 delay (s)").cell(latency.quantile(0.95), 4);
  summary.row().cell("inter-cluster data sends").cell(
      metrics.intercluster_data_sends());
  summary.row().cell("inter-cluster control sends").cell(
      metrics.intercluster_control_sends());
  summary.row().cell("total sends").cell(
      metrics.counter_prefix_sum("send.") -
      metrics.counter_prefix_sum("send.intercluster."));
  summary.row().cell("drops").cell(metrics.counter_prefix_sum("drop."));
  const LinkId hot = metrics.busiest_trunk();
  if (hot.valid()) {
    std::ostringstream hot_desc;
    hot_desc << hot << " at "
             << static_cast<int>(metrics.link_utilization(hot) * 100)
             << "% busy";
    summary.row().cell("busiest trunk").cell(hot_desc.str());
  }

  if (cli.kind == harness::ProtocolKind::kPaper) {
    const auto report = e.convergence();
    summary.row().cell("tree rooted at source").cell(
        report.tree_rooted_at_source ? "yes" : "no");
    summary.row().cell("induces cluster tree").cell(
        report.induces_cluster_tree ? "yes" : "no");
    summary.row().cell("cluster leaders").cell(
        static_cast<std::int64_t>(report.leader_count));
  }

  if (cli.csv) {
    summary.print_csv(std::cout);
  } else {
    summary.print(std::cout);
  }

  if (!cli.csv_prefix.empty()) {
    std::ofstream counters_out(cli.csv_prefix + ".counters.csv");
    metrics.write_counters_csv(counters_out);
    std::ofstream latencies_out(cli.csv_prefix + ".latencies.csv");
    metrics.write_latencies_csv(latencies_out);
    std::cerr << "wrote " << cli.csv_prefix << ".counters.csv and "
              << cli.csv_prefix << ".latencies.csv\n";
  }

  if (!cli.dot_prefix.empty()) {
    std::ofstream topo_out(cli.dot_prefix + ".topology.dot");
    trace::write_topology_dot(topo_out, e.network());
    std::cerr << "wrote " << cli.dot_prefix << ".topology.dot\n";
    if (cli.kind == harness::ProtocolKind::kPaper) {
      std::ofstream parents_out(cli.dot_prefix + ".parents.dot");
      trace::write_parent_graph_dot(parents_out, e.host_views(),
                                    e.network(), e.source());
      std::cerr << "wrote " << cli.dot_prefix << ".parents.dot\n";
    }
  }
  return complete ? 0 : 1;
}
