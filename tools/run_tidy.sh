#!/usr/bin/env bash
# clang-tidy gate: runs the curated check set (.clang-tidy) over every
# first-party translation unit and fails on any diagnostic
# (WarningsAsErrors: '*' upgrades them all).
#
# Usage:
#   tools/run_tidy.sh [build-dir]
#
# RBCAST_TIDY selects the binary ("RBCAST_TIDY=clang-tidy-18"); CI pins a
# version this way so check behavior does not drift with the runner image.
#
# The build dir must have a compilation database; any configured preset
# produces one (CMAKE_EXPORT_COMPILE_COMMANDS is ON globally). If the
# default dir has none, the script configures it first. Exits 0 with a
# notice when clang-tidy is not installed (the CI tidy job installs it;
# local runs without it should not break the workflow).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"$repo_root/build"}"

tidy="${RBCAST_TIDY:-$(command -v clang-tidy || true)}"
if [[ -z "$tidy" ]]; then
  echo "run_tidy.sh: clang-tidy not found on PATH; skipping (install clang-tidy to run the gate)"
  exit 0
fi
if ! command -v "$tidy" > /dev/null; then
  echo "run_tidy.sh: $tidy (RBCAST_TIDY) not found" >&2
  exit 1
fi

if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "run_tidy.sh: configuring $build_dir for a compilation database"
  cmake -B "$build_dir" -S "$repo_root" > /dev/null
fi

# First-party TUs only: the gate owns src/, tools/, tests/, bench/,
# examples/ but not whatever the toolchain drops into the build tree.
mapfile -t files < <(cd "$repo_root" && \
  find src tools tests bench examples -name '*.cpp' | sort)

echo "run_tidy.sh: $("$tidy" --version | head -n 1)"
echo "run_tidy.sh: checking ${#files[@]} translation units"

runner="$(command -v run-clang-tidy || true)"
status=0
if [[ -n "$runner" ]]; then
  # Parallel runner; -quiet keeps the output to the diagnostics. The
  # -clang-tidy-binary flag keeps the runner on the pinned binary.
  (cd "$repo_root" && "$runner" -quiet -p "$build_dir" \
      -clang-tidy-binary "$(command -v "$tidy")" "${files[@]}") || status=$?
else
  for f in "${files[@]}"; do
    (cd "$repo_root" && "$tidy" -quiet -p "$build_dir" "$f") || status=$?
  done
fi

if [[ $status -ne 0 ]]; then
  echo "run_tidy.sh: FAILED — fix the diagnostics above (or, if a check is wrong for this codebase, argue its exclusion in .clang-tidy)"
  exit 1
fi
echo "run_tidy.sh: clean"
