# End-to-end dual-backend smoke driven by the node_cli_smoke ctest:
#
#   1. run the 32-host single-cluster workload over real UDP sockets
#      (rbcast_node --all-hosts, seeded impairment, ephemeral ports) with
#      a wall-clock convergence deadline — when RBCAST_TOP is set, the
#      run happens inside admin_smoke.sh, which additionally probes the
#      live admin plane (/healthz readiness flip, /metrics schema,
#      rbcast_top fleet aggregation, hostile-input survival);
#   2. run the same workload in the simulator (rbcast_sim, one cluster of
#      32 hosts, same message count);
#   3. rbcast_trace --compare must report identical per-host delivery sets
#      — the protocol promise that may not depend on which backend ran.
file(MAKE_DIRECTORY ${WORK_DIR})
set(real_trace ${WORK_DIR}/node_smoke.real.jsonl)
set(sim_trace ${WORK_DIR}/node_smoke.sim.jsonl)

if(DEFINED RBCAST_TOP)
  execute_process(
    COMMAND bash ${CMAKE_CURRENT_LIST_DIR}/admin_smoke.sh
            ${RBCAST_NODE} ${RBCAST_TOP} ${NODE_CONFIG} ${WORK_DIR}
            ${real_trace}
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "admin smoke failed (${rc}):\n${out}${err}")
  endif()
  message(STATUS "${out}")
else()
  execute_process(
    COMMAND ${RBCAST_NODE} --config ${NODE_CONFIG} --all-hosts
            --trace-out ${real_trace}
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "rbcast_node run failed (${rc}):\n${out}${err}")
  endif()
  if(NOT out MATCHES "converged: yes")
    message(FATAL_ERROR "rbcast_node did not converge:\n${out}")
  endif()
endif()

execute_process(
  COMMAND ${RBCAST_SIM} --clusters 1 --hosts 32 --messages 20 --seed 1
          --trace-out ${sim_trace}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "rbcast_sim run failed (${rc}):\n${out}${err}")
endif()

execute_process(
  COMMAND ${RBCAST_TRACE} --compare ${sim_trace} ${real_trace}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "sim and real delivery sets diverge (${rc}):\n${out}${err}")
endif()
if(NOT out MATCHES "MATCH")
  message(FATAL_ERROR "compare did not report MATCH:\n${out}")
endif()
message(STATUS "node smoke passed: ${real_trace} vs ${sim_trace}")
