// rbcast_top — fleet-wide live view over node admin endpoints.
//
// Polls each endpoint's /status document (the JSON twin of /metrics —
// trace::parse_status_json is the only wire dependency) and renders an
// aggregated table: per-endpoint host counts, readiness, delivery
// throughput, p99 delivery latency derived from histogram deltas between
// polls, batch amortization (frames per datagram) and orphan/leader
// counts. One row per endpoint plus a fleet summary row.
//
// Modes:
//   * interactive (default): clear-and-redraw every --interval-s;
//   * --once: one poll, one render, exit 0 iff every endpoint answered;
//   * --json (with --once the CI shape): machine-readable aggregate.
//
// Strictly an observer: nothing here can write to a node — the admin
// plane serves GETs only.
#include <netdb.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <limits>
#include <iomanip>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "trace/exposition.h"
#include "util/table.h"

using namespace rbcast;

namespace {

struct Options {
  std::vector<std::string> endpoints;  // "host:port" or "port" (localhost)
  std::string endpoints_file;
  double interval_s = 2.0;
  int timeout_ms = 2000;
  bool once = false;
  bool json = false;
};

void usage() {
  std::cout <<
      "rbcast_top — live fleet view over rbcast_node admin endpoints\n\n"
      "usage: rbcast_top [options] ENDPOINT...\n"
      "  ENDPOINT              host:port, or a bare port (127.0.0.1)\n"
      "  --endpoints-file F    read endpoints (one per line, # comments)\n"
      "  --interval-s T        refresh period (default 2)\n"
      "  --timeout-ms N        per-request timeout (default 2000)\n"
      "  --once                poll once, print, exit (0 iff all answered)\n"
      "  --json                machine-readable aggregate instead of the\n"
      "                        table (--once --json is the CI shape)\n"
      "  --help                this text\n";
}

bool parse(int argc, char** argv, Options& options) {
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = nullptr;
    if (arg == "--help" || arg == "-h") {
      usage();
      std::exit(0);
    } else if (arg == "--once") {
      options.once = true;
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--endpoints-file") {
      if ((value = need_value(i)) == nullptr) return false;
      options.endpoints_file = value;
    } else if (arg == "--interval-s") {
      if ((value = need_value(i)) == nullptr) return false;
      options.interval_s = std::atof(value);
    } else if (arg == "--timeout-ms") {
      if ((value = need_value(i)) == nullptr) return false;
      options.timeout_ms = std::atoi(value);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag: " << arg << " (try --help)\n";
      return false;
    } else {
      options.endpoints.push_back(arg);
    }
  }
  if (!options.endpoints_file.empty()) {
    std::ifstream in(options.endpoints_file);
    if (!in) {
      std::cerr << "cannot open " << options.endpoints_file << "\n";
      return false;
    }
    std::string line;
    while (std::getline(in, line)) {
      const std::size_t hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      std::istringstream trim(line);
      std::string token;
      if (trim >> token) options.endpoints.push_back(token);
    }
  }
  if (options.endpoints.empty()) {
    std::cerr << "no endpoints given (try --help)\n";
    return false;
  }
  return true;
}

// "host:port" / bare "port" -> (host, port-string).
std::pair<std::string, std::string> split_endpoint(const std::string& ep) {
  const std::size_t colon = ep.rfind(':');
  if (colon == std::string::npos) return {"127.0.0.1", ep};
  return {ep.substr(0, colon), ep.substr(colon + 1)};
}

// Minimal HTTP GET with a wall-clock budget: nonblocking connect +
// poll-paced write/read until EOF. Returns the response body iff the
// status line says 200.
std::optional<std::string> http_get(const std::string& endpoint,
                                    const std::string& path, int timeout_ms,
                                    std::string& error) {
  const auto [host, port] = split_endpoint(endpoint);

  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (::getaddrinfo(host.c_str(), port.c_str(), &hints, &res) != 0 ||
      res == nullptr) {
    error = "cannot resolve " + endpoint;
    return std::nullopt;
  }
  const int fd = ::socket(res->ai_family, SOCK_NONBLOCK | SOCK_STREAM, 0);
  if (fd < 0) {
    ::freeaddrinfo(res);
    error = "socket() failed";
    return std::nullopt;
  }
  int rc = ::connect(fd, res->ai_addr, res->ai_addrlen);
  ::freeaddrinfo(res);
  auto fail = [&](const std::string& what) {
    ::close(fd);
    error = what;
    return std::nullopt;
  };
  if (rc != 0 && errno != EINPROGRESS) return fail("connect failed");
  pollfd pfd{fd, POLLOUT, 0};
  if (rc != 0) {
    if (::poll(&pfd, 1, timeout_ms) <= 0) return fail("connect timeout");
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0 ||
        soerr != 0) {
      return fail("connection refused");
    }
  }

  const std::string request = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  std::size_t written = 0;
  while (written < request.size()) {
    const ssize_t n = ::write(fd, request.data() + written,
                              request.size() - written);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pfd.events = POLLOUT;
      if (::poll(&pfd, 1, timeout_ms) <= 0) return fail("write timeout");
      continue;
    }
    return fail("write failed");
  }

  std::string response;
  while (true) {
    char buf[4096];
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      response.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) break;  // EOF: Connection: close semantics
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      pfd.events = POLLIN;
      if (::poll(&pfd, 1, timeout_ms) <= 0) return fail("read timeout");
      continue;
    }
    return fail("read failed");
  }
  ::close(fd);

  const std::size_t eol = response.find("\r\n");
  if (eol == std::string::npos) {
    error = "malformed response";
    return std::nullopt;
  }
  if (response.compare(0, 5, "HTTP/") != 0 ||
      response.substr(0, eol).find(" 200 ") == std::string::npos) {
    error = "HTTP error: " + response.substr(0, eol);
    return std::nullopt;
  }
  const std::size_t body = response.find("\r\n\r\n");
  if (body == std::string::npos) {
    error = "no body";
    return std::nullopt;
  }
  return response.substr(body + 4);
}

// One endpoint's numbers after a poll.
struct Sample {
  bool reachable{false};
  std::string error;
  bool ready{false};
  std::uint64_t hosts{0};
  std::uint64_t converged_hosts{0};  // info_count == messages_expected
  std::uint64_t deliveries{0};
  std::uint64_t orphans{0};
  std::uint64_t leaders{0};
  std::uint64_t decode_errors{0};
  std::uint64_t auth_rejects{0};
  std::int64_t messages_expected{0};
  double now_s{0};
  // delivery.latency_seconds, summed across label sets.
  std::vector<double> lat_bounds;
  std::vector<std::uint64_t> lat_cumulative;
  std::uint64_t lat_count{0};
  // Coalescer amortization inputs.
  std::uint64_t frames_enqueued{0};
  std::uint64_t batches_flushed{0};
};

Sample poll_endpoint(const std::string& endpoint, int timeout_ms) {
  Sample s;
  std::string error;
  const std::optional<std::string> body =
      http_get(endpoint, "/status", timeout_ms, error);
  if (!body) {
    s.error = error;
    return s;
  }
  trace::StatusDoc doc;
  try {
    doc = trace::parse_status_json(*body);
  } catch (const std::exception& e) {
    s.error = e.what();
    return s;
  }
  s.reachable = true;
  s.ready = doc.ready;
  s.now_s = doc.now_s;
  s.messages_expected = doc.messages_expected;
  s.hosts = doc.hosts.size();
  for (const trace::HostStatus& h : doc.hosts) {
    if (h.info_count ==
        static_cast<std::uint64_t>(doc.messages_expected)) {
      ++s.converged_hosts;
    }
    s.deliveries += h.deliveries;
    s.decode_errors += h.decode_errors;
    s.auth_rejects += h.auth_rejects;
    if (h.orphan) ++s.orphans;
    if (h.leader) ++s.leaders;
  }
  for (const util::MetricSnapshot& m : doc.metrics) {
    if (m.kind == util::MetricSnapshot::Kind::kHistogram &&
        m.name == "delivery.latency_seconds") {
      if (s.lat_bounds.empty()) {
        s.lat_bounds = m.bounds;
        s.lat_cumulative.assign(m.bounds.size(), 0);
      }
      if (m.bounds == s.lat_bounds) {
        for (std::size_t i = 0; i < m.cumulative.size(); ++i) {
          s.lat_cumulative[i] += m.cumulative[i];
        }
        s.lat_count += m.count;
      }
    } else if (m.kind == util::MetricSnapshot::Kind::kCounter) {
      if (m.name == "transport.frame_decode_errors") {
        s.decode_errors += m.counter;
      } else if (m.name == "transport.coalescer.frames_enqueued") {
        s.frames_enqueued += m.counter;
      } else if (m.name == "transport.coalescer.batches_flushed") {
        s.batches_flushed += m.counter;
      }
    }
  }
  return s;
}

// p99 from bucket counts: the upper bound of the first bucket covering
// the 99th percentile (NaN when empty, +inf above the last bound).
double histogram_p99(const std::vector<double>& bounds,
                     const std::vector<std::uint64_t>& cumulative,
                     std::uint64_t count) {
  if (count == 0 || bounds.empty()) return std::nan("");
  const auto target =
      static_cast<std::uint64_t>(std::ceil(0.99 * static_cast<double>(count)));
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (cumulative[i] >= target) return bounds[i];
  }
  return std::numeric_limits<double>::infinity();
}

std::string fmt_ms(double seconds) {
  if (std::isnan(seconds)) return "-";
  if (std::isinf(seconds)) return "inf";
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << seconds * 1e3;
  return os.str();
}

std::string fmt_ratio(std::uint64_t num, std::uint64_t den) {
  if (den == 0) return "-";
  std::ostringstream os;
  os << std::fixed << std::setprecision(2)
     << static_cast<double>(num) / static_cast<double>(den);
  return os.str();
}

// A never-reached placeholder for "no previous sample".
const Sample kNoSample{};

// The whole-fleet aggregate of one polling round.
struct Fleet {
  std::uint64_t reachable{0};
  bool all_ready{true};
  Sample sum;  // totals across endpoints (lat_* merged when bounds agree)
};

Fleet aggregate(const std::vector<Sample>& samples) {
  Fleet f;
  for (const Sample& s : samples) {
    if (!s.reachable) {
      f.all_ready = false;
      continue;
    }
    ++f.reachable;
    f.all_ready = f.all_ready && s.ready;
    f.sum.hosts += s.hosts;
    f.sum.converged_hosts += s.converged_hosts;
    f.sum.deliveries += s.deliveries;
    f.sum.orphans += s.orphans;
    f.sum.leaders += s.leaders;
    f.sum.decode_errors += s.decode_errors;
    f.sum.auth_rejects += s.auth_rejects;
    f.sum.frames_enqueued += s.frames_enqueued;
    f.sum.batches_flushed += s.batches_flushed;
    if (s.lat_bounds.empty()) continue;
    if (f.sum.lat_bounds.empty()) {
      f.sum.lat_bounds = s.lat_bounds;
      f.sum.lat_cumulative.assign(s.lat_bounds.size(), 0);
    }
    if (s.lat_bounds == f.sum.lat_bounds) {
      for (std::size_t i = 0; i < s.lat_cumulative.size(); ++i) {
        f.sum.lat_cumulative[i] += s.lat_cumulative[i];
      }
      f.sum.lat_count += s.lat_count;
    }
  }
  return f;
}

// Latency distribution accrued between two polls: p99 over the bucket
// deltas. On the first round `prev` is empty, so the delta is the
// cumulative total — exactly right for --once.
double delta_p99(const Sample& prev, const Sample& cur) {
  if (prev.lat_bounds != cur.lat_bounds || prev.lat_bounds.empty()) {
    return histogram_p99(cur.lat_bounds, cur.lat_cumulative, cur.lat_count);
  }
  std::vector<std::uint64_t> delta(cur.lat_cumulative.size(), 0);
  for (std::size_t i = 0; i < delta.size(); ++i) {
    delta[i] = cur.lat_cumulative[i] - prev.lat_cumulative[i];
  }
  return histogram_p99(cur.lat_bounds, delta, cur.lat_count - prev.lat_count);
}

void render_table(const Options& options, const std::vector<Sample>& current,
                  const std::vector<Sample>& previous, double dt_s) {
  const Fleet fleet = aggregate(current);
  const Fleet fleet_prev = aggregate(previous);

  std::cout << "rbcast_top — " << options.endpoints.size() << " endpoint(s), "
            << fleet.sum.hosts << " hosts, "
            << fleet.sum.converged_hosts << " converged, fleet "
            << (fleet.reachable == options.endpoints.size() && fleet.all_ready
                    ? "READY"
                    : "not ready")
            << "\n\n";

  util::Table table({"endpoint", "hosts", "ready", "deliv", "deliv/s",
                     "p99_ms", "fr/dgram", "orph", "lead", "decode_err",
                     "auth.rejects"});
  auto rate_cell = [&](std::uint64_t cur, std::uint64_t prev,
                       bool have_prev) -> std::string {
    if (dt_s <= 0 || !have_prev) return "-";
    std::ostringstream os;
    os << std::fixed << std::setprecision(1)
       << static_cast<double>(cur - prev) / dt_s;
    return os.str();
  };
  for (std::size_t i = 0; i < current.size(); ++i) {
    const Sample& s = current[i];
    if (!s.reachable) {
      table.row().cell(options.endpoints[i]).cell("-").cell(
          "DOWN: " + s.error);
      for (int c = 0; c < 8; ++c) table.cell("-");
      continue;
    }
    const Sample& p = i < previous.size() ? previous[i] : kNoSample;
    table.row()
        .cell(options.endpoints[i])
        .cell(s.hosts)
        .cell(s.ready ? "yes" : "no")
        .cell(s.deliveries)
        .cell(rate_cell(s.deliveries, p.deliveries, p.reachable))
        .cell(fmt_ms(delta_p99(p, s)))
        .cell(fmt_ratio(s.frames_enqueued, s.batches_flushed))
        .cell(s.orphans)
        .cell(s.leaders)
        .cell(s.decode_errors)
        .cell(s.auth_rejects);
  }
  if (current.size() > 1) {
    table.row()
        .cell("fleet")
        .cell(fleet.sum.hosts)
        .cell(fleet.all_ready ? "yes" : "no")
        .cell(fleet.sum.deliveries)
        .cell(rate_cell(fleet.sum.deliveries, fleet_prev.sum.deliveries,
                        !previous.empty()))
        .cell(fmt_ms(delta_p99(fleet_prev.sum, fleet.sum)))
        .cell(fmt_ratio(fleet.sum.frames_enqueued, fleet.sum.batches_flushed))
        .cell(fleet.sum.orphans)
        .cell(fleet.sum.leaders)
        .cell(fleet.sum.decode_errors)
        .cell(fleet.sum.auth_rejects);
  }
  table.print(std::cout);
  std::cout << std::flush;
}

std::string fmt_json_double(double v) {
  if (std::isnan(v) || std::isinf(v)) return "null";
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

void render_json(const Options& options, const std::vector<Sample>& current,
                 const std::vector<Sample>& previous) {
  const Fleet fleet = aggregate(current);
  const Fleet fleet_prev = aggregate(previous);
  std::ostringstream os;
  os << "{\"endpoints\":[";
  for (std::size_t i = 0; i < current.size(); ++i) {
    const Sample& s = current[i];
    if (i > 0) os << ",";
    os << "{\"endpoint\":\"" << options.endpoints[i] << "\""
       << ",\"reachable\":" << (s.reachable ? "true" : "false")
       << ",\"ready\":" << (s.ready ? "true" : "false")
       << ",\"hosts\":" << s.hosts
       << ",\"converged_hosts\":" << s.converged_hosts
       << ",\"deliveries\":" << s.deliveries << ",\"orphans\":" << s.orphans
       << ",\"leaders\":" << s.leaders
       << ",\"decode_errors\":" << s.decode_errors
       << ",\"auth_rejects\":" << s.auth_rejects << "}";
  }
  os << "],\"fleet\":{\"endpoints\":" << options.endpoints.size()
     << ",\"reachable\":" << fleet.reachable
     << ",\"hosts\":" << fleet.sum.hosts
     << ",\"converged_hosts\":" << fleet.sum.converged_hosts
     << ",\"converged\":"
     << (fleet.reachable == options.endpoints.size() && fleet.all_ready
             ? "true"
             : "false")
     << ",\"deliveries\":" << fleet.sum.deliveries
     << ",\"orphans\":" << fleet.sum.orphans
     << ",\"leaders\":" << fleet.sum.leaders
     << ",\"decode_errors\":" << fleet.sum.decode_errors
     << ",\"auth_rejects\":" << fleet.sum.auth_rejects
     << ",\"p99_s\":" << fmt_json_double(delta_p99(fleet_prev.sum, fleet.sum))
     << ",\"frames_per_datagram\":"
     << (fleet.sum.batches_flushed == 0
             ? "null"
             : fmt_json_double(
                   static_cast<double>(fleet.sum.frames_enqueued) /
                   static_cast<double>(fleet.sum.batches_flushed)))
     << "}}";
  std::cout << os.str() << "\n" << std::flush;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse(argc, argv, options)) return 2;

  std::vector<Sample> previous;
  double prev_at_ms = 0;
  while (true) {
    std::vector<Sample> current;
    current.reserve(options.endpoints.size());
    for (const std::string& ep : options.endpoints) {
      current.push_back(poll_endpoint(ep, options.timeout_ms));
    }
    timespec ts{};
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    const double now_ms =
        static_cast<double>(ts.tv_sec) * 1e3 +
        static_cast<double>(ts.tv_nsec) / 1e6;
    const double dt_s =
        previous.empty() ? 0 : (now_ms - prev_at_ms) / 1e3;

    if (options.json) {
      render_json(options, current, previous);
    } else {
      if (!options.once) std::cout << "\x1b[H\x1b[2J";  // clear, home
      render_table(options, current, previous, dt_s);
    }

    if (options.once) {
      for (const Sample& s : current) {
        if (!s.reachable) return 1;
      }
      return 0;
    }
    previous = std::move(current);
    prev_at_ms = now_ms;
    ::poll(nullptr, 0, static_cast<int>(options.interval_s * 1e3));
  }
}
