# End-to-end chaos smoke driven by the chaos_cli_smoke ctest:
#   1. a batch of seeded scenarios on the default spec must come back clean,
#   2. the known-bad spec must be caught, shrunk, and written as repro.json,
#   3. rbcast_sim --chaos-spec must replay the repro to the same violation,
#      deterministically (two replays, identical output).
set(out_dir ${WORK_DIR}/chaos_smoke)
file(MAKE_DIRECTORY ${out_dir})

execute_process(
  COMMAND ${RBCAST_CHAOS} --runs 8 --seed 1 --out ${out_dir}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "default chaos runs not clean (${rc}):\n${out}${err}")
endif()
if(NOT out MATCHES "all 8 chaos runs clean")
  message(FATAL_ERROR "unexpected rbcast_chaos output:\n${out}")
endif()

execute_process(
  COMMAND ${RBCAST_CHAOS} --spec ${BAD_SPEC} --runs 1 --seed 1
          --shrink-attempts 60 --out ${out_dir}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR
    "known-bad spec should exit 1, got ${rc}:\n${out}${err}")
endif()
if(NOT out MATCHES "VIOLATION")
  message(FATAL_ERROR "known-bad spec not flagged:\n${out}")
endif()
if(NOT EXISTS ${out_dir}/repro.json OR NOT EXISTS ${out_dir}/repro.jsonl)
  message(FATAL_ERROR "repro artifacts missing in ${out_dir}")
endif()

# Violation text can contain semicolons, so plain variables, not lists.
foreach(attempt first second)
  execute_process(
    COMMAND ${RBCAST_SIM} --chaos-spec ${out_dir}/repro.json --chaos-seed 1
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 1)
    message(FATAL_ERROR
      "repro replay should exit 1 (violation), got ${rc}:\n${out}${err}")
  endif()
  if(NOT out MATCHES "invariant violations:")
    message(FATAL_ERROR "replay output lacks violations:\n${out}")
  endif()
  set(${attempt} "${out}")
endforeach()
if(NOT first STREQUAL second)
  message(FATAL_ERROR
    "replay is not deterministic:\n--- first ---\n${first}\n--- second ---\n${second}")
endif()
message(STATUS "chaos smoke passed: ${out_dir}")
