#!/usr/bin/env bash
# Admin-plane smoke: drives a lingering rbcast_node through its
# observation endpoints while the run is live.
#
#   1. start the node in the background with --admin-port 0 (ephemeral)
#      and a linger window, resolve the bound port via --admin-port-file;
#   2. /healthz must answer 503 "not ready" BEFORE convergence (the
#      source needs messages x interval wall seconds, so an immediate
#      probe is reliably early) and flip to 200 "ok" at convergence;
#   3. /metrics must parse as Prometheus text and expose every host's
#      labelled series plus the transport counters;
#   4. rbcast_top --once --json must report the whole fleet converged
#      (the JSON snapshot is left in $WORK_DIR/fleet.json for CI upload);
#   5. a deliberately malformed request must not take the node down;
#   6. GET /quit ends the linger; the node must still exit 0 (converged).
#
# usage: admin_smoke.sh NODE_BIN TOP_BIN CONFIG WORK_DIR TRACE_OUT
set -u

NODE_BIN=$1
TOP_BIN=$2
CONFIG=$3
WORK_DIR=$4
TRACE_OUT=$5

PORT_FILE="$WORK_DIR/admin_port"
FLEET_JSON="$WORK_DIR/fleet.json"
NODE_LOG="$WORK_DIR/node_admin.log"
rm -f "$PORT_FILE" "$FLEET_JSON"

fail() {
  echo "admin smoke FAILED: $*" >&2
  [ -n "${NODE_PID:-}" ] && kill "$NODE_PID" 2>/dev/null
  exit 1
}

# GET helper: body to stdout, "HTTPSTATUS:<code>" on the last line.
http_get() {
  curl -s -m 5 -w '\nHTTPSTATUS:%{http_code}' "http://127.0.0.1:$PORT$1"
}

"$NODE_BIN" --config "$CONFIG" --all-hosts --trace-out "$TRACE_OUT" \
  --admin-port 0 --admin-port-file "$PORT_FILE" --linger-s 30 \
  >"$NODE_LOG" 2>&1 &
NODE_PID=$!

# The port file appears as soon as the admin socket is bound (well before
# the workload can converge: messages x interval is the floor).
for _ in $(seq 1 100); do
  [ -s "$PORT_FILE" ] && break
  kill -0 "$NODE_PID" 2>/dev/null || fail "node died early: $(cat "$NODE_LOG")"
  sleep 0.05
done
[ -s "$PORT_FILE" ] || fail "admin port file never appeared"
PORT=$(cat "$PORT_FILE")

# --- 2a: readiness must be DOWN before convergence ---------------------------
early=$(http_get /healthz)
case "$early" in
  *"HTTPSTATUS:503"*) ;;
  *) fail "/healthz answered '$early' before convergence (want 503)" ;;
esac

# --- 2b: ...and must flip to ready at convergence ----------------------------
ready=""
for _ in $(seq 1 300); do
  out=$(http_get /healthz)
  case "$out" in
    *"HTTPSTATUS:200"*) ready=yes; break ;;
  esac
  kill -0 "$NODE_PID" 2>/dev/null || fail "node died while waiting: $(cat "$NODE_LOG")"
  sleep 0.1
done
[ -n "$ready" ] || fail "/healthz never became ready"

# --- 3: /metrics exposes the full schema -------------------------------------
metrics=$(http_get /metrics)
case "$metrics" in
  *"HTTPSTATUS:200"*) ;;
  *) fail "/metrics scrape failed" ;;
esac
# Keep the scrape (minus the status trailer) as a CI artifact.
printf '%s\n' "$metrics" | sed '$d' >"$WORK_DIR/metrics.prom"
for want in \
  "# TYPE rbcast_host_deliveries counter" \
  "# TYPE rbcast_delivery_latency_seconds histogram" \
  "rbcast_delivery_latency_seconds_bucket{le=\"+Inf\"}" \
  "# TYPE rbcast_transport_datagrams_sent counter" \
  "rbcast_transport_coalescer_frames_enqueued"; do
  case "$metrics" in
    *"$want"*) ;;
    *) fail "/metrics is missing '$want'" ;;
  esac
done
# Every host in the config must have a labelled series.
hosts=$(grep -c '"id"' "$CONFIG")
h=0
while [ "$h" -lt "$hosts" ]; do
  case "$metrics" in
    *"host=\"$h\""*) ;;
    *) fail "/metrics has no series for host $h" ;;
  esac
  h=$((h + 1))
done

# --- 4: rbcast_top sees the fleet converged ----------------------------------
"$TOP_BIN" --once --json "127.0.0.1:$PORT" >"$FLEET_JSON" \
  || fail "rbcast_top --once --json exited non-zero"
case "$(cat "$FLEET_JSON")" in
  *"\"hosts\":$hosts"*) ;;
  *) fail "rbcast_top fleet does not count $hosts hosts: $(cat "$FLEET_JSON")" ;;
esac
case "$(cat "$FLEET_JSON")" in
  *'"converged":true'*) ;;
  *) fail "rbcast_top fleet not converged: $(cat "$FLEET_JSON")" ;;
esac

# --- 5: hostile input must not kill the node ---------------------------------
printf 'POST /metrics HTTP/1.1\r\n\r\n' \
  | curl -s -m 5 --data-binary @- "http://127.0.0.1:$PORT/metrics" >/dev/null
printf '\x00\x01\x02garbage\r\n\r\n' >"$WORK_DIR/garbage.bin"
curl -s -m 5 --data-binary "@$WORK_DIR/garbage.bin" \
  "http://127.0.0.1:$PORT/" >/dev/null
kill -0 "$NODE_PID" 2>/dev/null || fail "node died on malformed requests"
status_after=$(http_get /status)
case "$status_after" in
  *'"ready":true'*) ;;
  *) fail "/status unhealthy after malformed requests: $status_after" ;;
esac

# --- 6: clean early shutdown through /quit -----------------------------------
http_get /quit >/dev/null
wait "$NODE_PID"
rc=$?
[ "$rc" -eq 0 ] || fail "node exited $rc after /quit: $(cat "$NODE_LOG")"
grep -q "converged: yes" "$NODE_LOG" || fail "node log lacks convergence: $(cat "$NODE_LOG")"

echo "admin smoke passed: port $PORT, fleet snapshot in $FLEET_JSON"
exit 0
