// rbcast_check — bounded model checking of the protocol rules.
//
// Explores the protocol model (src/model) under an adversarial network —
// every delivery order, loss and duplication at any point — and verifies
// the safety invariants (exactly-once, integrity, no invention, INFO
// consistency) in every reachable state.
//
// Examples:
//   rbcast_check                               # default: 3 hosts, BFS
//   rbcast_check --hosts 2 --depth 16          # deeper, smaller system
//   rbcast_check --clusters 0,0,1 --walks 5000 # random-walk mode
//   rbcast_check --mutant double-delivery      # watch the checker catch it
//   rbcast_check --determinism-check           # replay gate (see below)
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "rbcast.h"

using namespace rbcast;

namespace {

// --- determinism self-check ---------------------------------------------
//
// The runtime half of the determinism gate (the static half is
// rbcast_lint): run the full simulator on the same topology and seed
// twice, and require bit-identical protocol event logs (via
// trace::EventLog::digest()). Any hidden nondeterminism — hash-order
// iteration, unseeded randomness, address-dependent tie-breaks — shows up
// as a digest mismatch. CI runs this under ASan/UBSan.

struct DeterminismScenario {
  std::string name;
  topo::Topology topology;
};

std::vector<DeterminismScenario> determinism_scenarios() {
  std::vector<DeterminismScenario> out;
  out.push_back({"figure-3.2", topo::make_figure_3_2().topology});
  out.push_back({"figure-4.1", topo::make_figure_4_1().topology});
  topo::ClusteredWanOptions wan;
  wan.clusters = 3;
  wan.hosts_per_cluster = 3;
  wan.shape = topo::TrunkShape::kRing;
  wan.seed = 7;
  out.push_back({"clustered-wan-ring-3x3", topo::make_clustered_wan(wan).topology});
  out.push_back({"single-cluster-5", topo::make_single_cluster(5).topology});
  return out;
}

std::uint64_t run_once(const topo::Topology& topology, std::uint64_t seed,
                       bool batch) {
  harness::ScenarioOptions options;
  options.source = HostId{0};
  options.seed = seed;
  if (batch) {
    // Exercise the coalescing data plane: the digests differ from the
    // unbatched ones (different wire traffic) but must still be
    // bit-identical across same-seed runs.
    options.protocol.batch_flush_delay = sim::milliseconds(5);
    options.protocol.batch_max_bytes = 1200;
  }
  harness::Experiment experiment(topology, options);
  experiment.start();
  experiment.broadcast_stream(15, sim::milliseconds(500), sim::seconds(1));
  experiment.run_for(sim::seconds(60));
  return experiment.events().digest();
}

int run_determinism_check(std::uint64_t seed, bool batch) {
  bool ok = true;
  std::cout << "determinism check: two runs per topology, seed " << seed
            << (batch ? ", batching on" : "") << "\n";
  for (DeterminismScenario& scenario : determinism_scenarios()) {
    const std::uint64_t first = run_once(scenario.topology, seed, batch);
    const std::uint64_t second = run_once(scenario.topology, seed, batch);
    const bool match = first == second;
    ok = ok && match;
    std::cout << "  " << std::left << std::setw(24) << scenario.name
              << " digest " << std::hex << std::setw(16) << first << " / "
              << std::setw(16) << second << std::dec
              << (match ? "  OK" : "  MISMATCH") << "\n";
  }
  std::cout << (ok ? "result: all event logs bit-identical\n"
                   : "result: NONDETERMINISM detected\n");
  return ok ? 0 : 1;
}

void usage() {
  std::cout <<
      "rbcast_check — bounded verification of the broadcast protocol\n\n"
      "  --hosts N         number of hosts (default 3)\n"
      "  --clusters LIST   comma-separated cluster index per host\n"
      "                    (default: every host its own cluster)\n"
      "  --broadcasts N    messages the source may generate (default 2)\n"
      "  --inflight N      adversarial network capacity (default 3)\n"
      "  --depth N         BFS depth bound (default 7)\n"
      "  --max-states N    BFS state bound (default 2000000)\n"
      "  --walks N         use random walks instead of BFS\n"
      "  --liveness N      N fault-free fair walks; report how many reach\n"
      "                    full dissemination\n"
      "  --steps N         steps per walk (default 150)\n"
      "  --seed N          random-walk seed (default 1)\n"
      "  --mutant M        inject a bug: double-delivery | accept-anyone\n"
      "  --determinism-check  run each built-in topology twice on the same\n"
      "                    seed and require identical event-log digests\n"
      "  --batch           with --determinism-check: enable transport\n"
      "                    coalescing (batch_flush_delay 5ms) in the runs\n"
      "  --help            this text\n";
}

}  // namespace

int main(int argc, char** argv) {
  model::ModelConfig config;
  config.hosts = 3;
  config.cluster_of = {0, 1, 2};
  int depth = 7;
  std::uint64_t max_states = 2'000'000;
  int walks = 0;
  int liveness_walks = 0;
  int steps = 150;
  std::uint64_t seed = 1;
  bool clusters_given = false;
  bool determinism_check = false;
  bool batch = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg == "--hosts") {
      config.hosts = std::atoi(value());
    } else if (arg == "--clusters") {
      config.cluster_of.clear();
      std::stringstream ss(value());
      std::string part;
      while (std::getline(ss, part, ',')) {
        config.cluster_of.push_back(std::atoi(part.c_str()));
      }
      clusters_given = true;
    } else if (arg == "--broadcasts") {
      config.max_broadcasts = std::atoi(value());
    } else if (arg == "--inflight") {
      config.max_inflight = static_cast<std::size_t>(std::atoi(value()));
    } else if (arg == "--depth") {
      depth = std::atoi(value());
    } else if (arg == "--max-states") {
      max_states = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--walks") {
      walks = std::atoi(value());
    } else if (arg == "--liveness") {
      liveness_walks = std::atoi(value());
    } else if (arg == "--steps") {
      steps = std::atoi(value());
    } else if (arg == "--seed") {
      seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--determinism-check") {
      determinism_check = true;
    } else if (arg == "--batch") {
      batch = true;
    } else if (arg == "--mutant") {
      const std::string m = value();
      if (m == "double-delivery") {
        config.mutant_double_delivery = true;
      } else if (m == "accept-anyone") {
        config.mutant_accept_from_anyone = true;
      } else {
        std::cerr << "unknown mutant: " << m << "\n";
        return 2;
      }
    } else {
      std::cerr << "unknown flag: " << arg << " (try --help)\n";
      return 2;
    }
  }
  if (determinism_check) return run_determinism_check(seed, batch);
  if (!clusters_given) {
    config.cluster_of.clear();
    for (int i = 0; i < config.hosts; ++i) config.cluster_of.push_back(i);
  }
  if (config.cluster_of.size() != static_cast<std::size_t>(config.hosts)) {
    std::cerr << "--clusters must list exactly --hosts entries\n";
    return 2;
  }

  model::Checker checker(config);
  std::cout << "configuration: " << config.hosts << " hosts, source h0, "
            << config.max_broadcasts << " broadcasts, inflight cap "
            << config.max_inflight << "\n";

  if (liveness_walks > 0) {
    const int live_steps = steps > 150 ? steps : 400;
    std::cout << "mode: " << liveness_walks << " fair (fault-free) walks x "
              << live_steps << " steps (seed " << seed << ")\n";
    const auto live = checker.explore_liveness(liveness_walks, live_steps,
                                               seed);
    std::cout << "full dissemination reached: " << live.completed << "/"
              << live.walks << " walks";
    if (live.completed > 0) {
      std::cout << " (mean " << live.mean_steps_to_complete << " steps)";
    }
    std::cout << "\nsafety: "
              << (live.clean() ? "all invariants held" : "VIOLATION")
              << "\n";
    return live.clean() && live.completed == live.walks ? 0 : 1;
  }

  model::ExplorationReport report;
  if (walks > 0) {
    std::cout << "mode: " << walks << " random walks x " << steps
              << " steps (seed " << seed << ")\n";
    report = checker.explore_random(walks, steps, seed);
  } else {
    std::cout << "mode: exhaustive BFS, depth " << depth << ", state bound "
              << max_states << "\n";
    report = checker.explore_bfs(depth, max_states);
  }

  std::cout << "states explored:   " << report.states_explored << "\n"
            << "transitions fired: " << report.transitions_fired << "\n"
            << "bounds hit:        " << (report.truncated ? "yes" : "no")
            << "\n";
  if (report.clean()) {
    std::cout << "result: all safety invariants hold in every explored "
                 "state\n";
    return 0;
  }
  const auto& violation = report.violations.front();
  std::cout << "result: VIOLATION of " << violation.invariant << " — "
            << violation.description << "\ncounterexample ("
            << violation.trace.size() << " steps):\n";
  for (const std::string& step : violation.trace) {
    std::cout << "  " << step << "\n";
  }
  return 1;
}
