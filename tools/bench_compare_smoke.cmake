# Asserts bench_compare.py fails loudly on disjoint benchmark name sets:
# non-zero exit AND a diagnosis naming the problem. Driven by the
# bench_compare_mismatch ctest (see tools/CMakeLists.txt).
execute_process(
  COMMAND ${PYTHON} ${COMPARE} ${BASELINE} ${CURRENT}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR
    "bench_compare.py exited 0 on mismatched benchmark names:\n${out}${err}")
endif()
if(NOT "${out}${err}" MATCHES "share no benchmark names")
  message(FATAL_ERROR
    "bench_compare.py failed without the mismatch diagnosis:\n${out}${err}")
endif()
message(STATUS "bench_compare.py rejected mismatched names (exit ${rc})")
