# Runs bench_recovery --json and gates it against the committed baseline
# (BENCH_recovery.json). The metrics are virtual-time results of seeded
# simulations, so the comparison is exact-by-construction; the 1.1x
# threshold exists only to tolerate deliberate sub-10% baseline drift
# during reviewed behavior changes.
set(current ${WORK_DIR}/bench_recovery_current.json)

execute_process(
  COMMAND ${BENCH} --json
  OUTPUT_FILE ${current}
  RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_recovery --json failed (${rc}):\n${err}")
endif()

execute_process(
  COMMAND ${PYTHON} ${COMPARE} ${BASELINE} ${current} --threshold 1.1
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "recovery metrics drifted from BENCH_recovery.json — if intentional, "
    "regenerate with: ./build/bench/bench_recovery --json > "
    "BENCH_recovery.json (${rc}):\n${out}${err}")
endif()
message(STATUS "bench_recovery gate passed")
