// rbcast_lint — repo-specific determinism lint.
//
// Walks src/ under the given repo root and enforces the rules documented in
// tools/lint/lint_engine.h (no unseeded randomness, no hash-order
// iteration in protocol layers, no direct output, RBCAST_ASSERT only,
// #pragma once in every header). Runs as a ctest; exits nonzero on any
// finding so the gate fails closed.
//
// Usage:
//   rbcast_lint [repo-root]      # default: current directory
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint_engine.h"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cpp";
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  const fs::path root = argc > 1 ? fs::path(argv[1]) : fs::current_path();
  const fs::path src = root / "src";
  if (!fs::is_directory(src)) {
    std::cerr << "rbcast_lint: no src/ under " << root << "\n";
    return 2;
  }

  // Deterministic file order (directory iteration order is OS-dependent —
  // the lint practices what it preaches).
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (entry.is_regular_file() && lintable(entry.path())) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  // Pass 1: harvest identifiers declared with unordered container types so
  // the unordered-range-for rule can flag their iteration anywhere.
  std::set<std::string> unordered_ids;
  std::vector<std::pair<std::string, std::string>> sources;  // rel, content
  sources.reserve(files.size());
  for (const fs::path& p : files) {
    std::string content = read_file(p);
    for (std::string& id : rbcast::lint::unordered_identifiers(content)) {
      unordered_ids.insert(std::move(id));
    }
    sources.emplace_back(fs::relative(p, root).generic_string(),
                         std::move(content));
  }

  // Pass 2: apply the rules.
  std::size_t total = 0;
  for (const auto& [rel, content] : sources) {
    for (const rbcast::lint::Finding& f :
         rbcast::lint::lint_file(rel, content, unordered_ids)) {
      std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                << f.message << "\n";
      ++total;
    }
  }

  if (total > 0) {
    std::cout << "rbcast_lint: " << total << " finding(s) in "
              << sources.size() << " file(s)\n";
    return 1;
  }
  std::cout << "rbcast_lint: " << sources.size() << " files clean\n";
  return 0;
}
