// rbcast_node — the protocol over real UDP sockets.
//
// Runs BroadcastHost instances on util::RealTimeScheduler +
// transport::UdpTransport: the same protocol automaton the simulator
// drives, now on the wall clock against real (localhost or LAN) datagram
// sockets. A JSON config names every host's address; one process can run
// a single host (`--host N`, one process per machine — the deployment
// shape) or the whole topology (`--all-hosts` — the integration-test
// shape, where port 0 entries bind ephemeral ports).
//
// The run streams `messages` broadcasts from the source, then waits for
// every locally hosted instance to hold the full sequence set; exit 0 on
// convergence before the deadline, 1 otherwise. With --trace-out the run
// emits the same JSONL schema as rbcast_sim, so
// `rbcast_trace --compare sim.jsonl real.jsonl` diffs a simulated and a
// real run of one workload.
//
// Config example (tests/data/node_32.json is the CI one):
//   {
//     "hosts": [{"id": 0, "addr": "127.0.0.1", "port": 0}, ...],
//     "source": 0, "seed": 1,
//     "messages": 20, "interval_ms": 100, "run_s": 30,
//     "impairment": {"loss": 0.05, "duplicate": 0.02, "reorder": 0.1,
//                    "delay_max_ms": 10, "seed": 7},
//     "protocol": {"attach_period_ms": 200, "info_intra_ms": 100,
//                  "batch_flush_ms": 2, "batch_max_bytes": 1200, ...}
//   }
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/broadcast_host.h"
#include "core/config.h"
#include "core/wire_codec.h"
#include "trace/admin_server.h"
#include "trace/event_log.h"
#include "trace/exposition.h"
#include "trace/metric_sampler.h"
#include "trace/net_tap.h"
#include "trace/trace_sink.h"
#include "transport/udp_transport.h"
#include "util/json.h"
#include "util/metrics_registry.h"
#include "util/real_time_scheduler.h"
#include "util/rng.h"

using namespace rbcast;

namespace {

constexpr const char* kContext = "node config";

struct NodeConfig {
  std::vector<transport::UdpTransport::Peer> peers;
  HostId source{0};
  std::uint64_t seed{1};
  int messages{20};
  util::Duration interval{util::milliseconds(100)};
  util::Duration run_for{util::seconds(30)};
  int admin_port{-1};  // <0 = no admin endpoint; 0 = ephemeral
  transport::ImpairmentConfig impairment;
  core::Config protocol;
};

struct CliOptions {
  std::string config_path;
  std::int32_t host = -1;  // --host N; -1 = --all-hosts
  bool all_hosts = false;
  std::string trace_out;
  double run_s = -1;            // <0: take the config's value
  std::uint64_t seed = 0;       // 0: take the config's value
  int admin_port = -2;          // -2: take the config's value
  std::string admin_port_file;  // write the bound port here (scripts)
  double linger_s = 0;          // keep serving admin after the run ends
};

// Reads a millisecond count into a Duration, falling back to `fallback`
// when the key is absent.
util::Duration ms_or(const util::Json& obj, const char* key,
                     util::Duration fallback) {
  const double ms = util::json_num_or(obj, key, util::to_seconds(fallback) *
                                                    1e3, kContext);
  return util::from_seconds(ms / 1e3);
}

NodeConfig load_config(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const util::Json root = util::parse_json(buffer.str(), kContext);

  NodeConfig cfg;
  const util::Json* hosts = root.find("hosts");
  if (hosts == nullptr || hosts->type != util::Json::Type::kArray ||
      hosts->items.empty()) {
    throw std::invalid_argument(
        std::string(kContext) + ": 'hosts' must be a non-empty array");
  }
  for (const util::Json& h : hosts->items) {
    transport::UdpTransport::Peer peer;
    const int id = util::json_int_or(h, "id", -1, kContext);
    if (id < 0) {
      throw std::invalid_argument(std::string(kContext) +
                                  ": every host needs a non-negative 'id'");
    }
    peer.host = HostId{id};
    peer.addr = util::json_str_or(h, "addr", "127.0.0.1", kContext);
    const int port = util::json_int_or(h, "port", 0, kContext);
    if (port < 0 || port > 65535) {
      throw std::invalid_argument(std::string(kContext) +
                                  ": 'port' out of range");
    }
    peer.port = static_cast<std::uint16_t>(port);
    cfg.peers.push_back(peer);
  }

  cfg.source = HostId{util::json_int_or(root, "source", 0, kContext)};
  cfg.seed = static_cast<std::uint64_t>(
      util::json_num_or(root, "seed", 1, kContext));
  cfg.messages = util::json_int_or(root, "messages", 20, kContext);
  cfg.interval = ms_or(root, "interval_ms", cfg.interval);
  cfg.run_for = util::from_seconds(
      util::json_num_or(root, "run_s", 30, kContext));
  cfg.admin_port = util::json_int_or(root, "admin_port", -1, kContext);
  if (cfg.admin_port > 65535) {
    throw std::invalid_argument(std::string(kContext) +
                                ": 'admin_port' out of range");
  }

  if (const util::Json* imp = root.find("impairment"); imp != nullptr) {
    cfg.impairment.loss = util::json_num_or(*imp, "loss", 0, kContext);
    cfg.impairment.duplicate =
        util::json_num_or(*imp, "duplicate", 0, kContext);
    cfg.impairment.reorder = util::json_num_or(*imp, "reorder", 0, kContext);
    cfg.impairment.delay_max =
        ms_or(*imp, "delay_max_ms", cfg.impairment.delay_max);
    cfg.impairment.seed = static_cast<std::uint64_t>(
        util::json_num_or(*imp, "seed", 0, kContext));
  }

  // Real-time defaults are much tighter than the simulator's: a localhost
  // test must converge in wall seconds, not virtual minutes. Every period
  // is still overridable per config.
  core::Config& p = cfg.protocol;
  p.attach_period = util::milliseconds(200);
  p.info_period_intra = util::milliseconds(100);
  p.info_period_inter = util::milliseconds(400);
  p.gapfill_period_neighbor = util::milliseconds(200);
  p.gapfill_period_far = util::milliseconds(800);
  p.parent_timeout = util::seconds(2);
  p.attach_ack_timeout = util::milliseconds(300);
  p.child_timeout = util::seconds(6);
  p.gapfill_suppress_period = util::milliseconds(600);
  p.data_bytes = 64;
  if (const util::Json* proto = root.find("protocol"); proto != nullptr) {
    p.attach_period = ms_or(*proto, "attach_period_ms", p.attach_period);
    p.info_period_intra =
        ms_or(*proto, "info_intra_ms", p.info_period_intra);
    p.info_period_inter =
        ms_or(*proto, "info_inter_ms", p.info_period_inter);
    p.gapfill_period_neighbor =
        ms_or(*proto, "gapfill_neighbor_ms", p.gapfill_period_neighbor);
    p.gapfill_period_far =
        ms_or(*proto, "gapfill_far_ms", p.gapfill_period_far);
    p.parent_timeout = ms_or(*proto, "parent_timeout_ms", p.parent_timeout);
    p.attach_ack_timeout =
        ms_or(*proto, "attach_ack_timeout_ms", p.attach_ack_timeout);
    p.child_timeout = ms_or(*proto, "child_timeout_ms", p.child_timeout);
    p.gapfill_suppress_period =
        ms_or(*proto, "gapfill_suppress_ms", p.gapfill_suppress_period);
    p.data_bytes = static_cast<std::size_t>(
        util::json_int_or(*proto, "data_bytes",
                          static_cast<int>(p.data_bytes), kContext));
    // Transport coalescing: batch_flush_ms > 0 buffers outbound frames
    // per destination and flushes multi-frame (wire v2) datagrams.
    p.batch_flush_delay = ms_or(*proto, "batch_flush_ms",
                                p.batch_flush_delay);
    p.batch_max_bytes = static_cast<std::size_t>(
        util::json_int_or(*proto, "batch_max_bytes",
                          static_cast<int>(p.batch_max_bytes), kContext));
  }
  return cfg;
}

void usage() {
  std::cout <<
      "rbcast_node — reliable broadcast over real UDP sockets\n\n"
      "usage: rbcast_node --config CONFIG.json (--host N | --all-hosts)\n"
      "                   [--trace-out F] [--run-s T] [--seed N]\n"
      "                   [--admin-port P] [--admin-port-file F]\n"
      "                   [--linger-s T]\n\n"
      "  --config F      JSON topology + workload (see tools/rbcast_node.cpp\n"
      "                  header for the schema)\n"
      "  --host N        run only host N in this process (one process per\n"
      "                  machine; every peer needs a fixed port)\n"
      "  --all-hosts     run the whole topology in this process (integration\n"
      "                  tests; port 0 entries bind ephemeral ports)\n"
      "  --trace-out F   stream a JSONL trace (same schema as rbcast_sim;\n"
      "                  diff the two with rbcast_trace --compare)\n"
      "  --run-s T       override the config's wall-clock deadline\n"
      "  --seed N        override the config's seed\n"
      "  --admin-port P  serve /metrics, /status and /healthz on\n"
      "                  127.0.0.1:P (0 = ephemeral; also the 'admin_port'\n"
      "                  config key). Observation-only, out of band.\n"
      "  --admin-port-file F\n"
      "                  write the bound admin port to F (scripts resolving\n"
      "                  an ephemeral port)\n"
      "  --linger-s T    keep serving the admin endpoint T seconds after\n"
      "                  the run ends (GET /quit ends the linger early)\n"
      "  --help          this text\n\n"
      "Exits 0 when every host in this process delivered the whole stream\n"
      "before the deadline, 1 otherwise.\n";
}

bool parse(int argc, char** argv, CliOptions& options) {
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = nullptr;
    if (arg == "--help" || arg == "-h") {
      usage();
      std::exit(0);
    } else if (arg == "--all-hosts") {
      options.all_hosts = true;
    } else if (arg == "--config") {
      if ((value = need_value(i)) == nullptr) return false;
      options.config_path = value;
    } else if (arg == "--host") {
      if ((value = need_value(i)) == nullptr) return false;
      options.host = std::atoi(value);
    } else if (arg == "--trace-out") {
      if ((value = need_value(i)) == nullptr) return false;
      options.trace_out = value;
    } else if (arg == "--run-s") {
      if ((value = need_value(i)) == nullptr) return false;
      options.run_s = std::atof(value);
    } else if (arg == "--seed") {
      if ((value = need_value(i)) == nullptr) return false;
      options.seed = std::strtoull(value, nullptr, 10);
    } else if (arg == "--admin-port") {
      if ((value = need_value(i)) == nullptr) return false;
      options.admin_port = std::atoi(value);
    } else if (arg == "--admin-port-file") {
      if ((value = need_value(i)) == nullptr) return false;
      options.admin_port_file = value;
    } else if (arg == "--linger-s") {
      if ((value = need_value(i)) == nullptr) return false;
      options.linger_s = std::atof(value);
    } else {
      std::cerr << "unknown flag: " << arg << " (try --help)\n";
      return false;
    }
  }
  if (options.config_path.empty()) {
    std::cerr << "--config is required (try --help)\n";
    return false;
  }
  if (options.all_hosts == (options.host >= 0)) {
    std::cerr << "exactly one of --host N / --all-hosts is required\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!parse(argc, argv, cli)) return 2;

  NodeConfig cfg;
  try {
    cfg = load_config(cli.config_path);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  if (cli.run_s >= 0) cfg.run_for = util::from_seconds(cli.run_s);
  if (cli.seed != 0) cfg.seed = cli.seed;
  if (cli.admin_port != -2) cfg.admin_port = cli.admin_port;

  std::vector<HostId> all_hosts;
  all_hosts.reserve(cfg.peers.size());
  for (const auto& peer : cfg.peers) all_hosts.push_back(peer.host);

  std::vector<HostId> local_hosts;
  if (cli.all_hosts) {
    local_hosts = all_hosts;
  } else {
    const HostId wanted{cli.host};
    for (const HostId h : all_hosts) {
      if (h == wanted) local_hosts.push_back(h);
    }
    if (local_hosts.empty()) {
      std::cerr << "host " << cli.host << " is not in the config's host "
                << "table\n";
      return 2;
    }
  }

  // --- wiring: scheduler -> codec -> transport -> hosts --------------------

  util::RealTimeScheduler scheduler;
  const core::ProtocolCodec codec;
  transport::UdpTransport::Config tcfg;
  tcfg.peers = cfg.peers;
  tcfg.impairment = cfg.impairment;
  tcfg.coalesce = transport::CoalescerConfig{cfg.protocol.batch_flush_delay,
                                             cfg.protocol.batch_max_bytes};

  std::ofstream trace_file;
  std::unique_ptr<trace::JsonlSink> sink;
  if (!cli.trace_out.empty()) {
    trace_file.open(cli.trace_out);
    if (!trace_file) {
      std::cerr << "cannot open " << cli.trace_out << " for writing\n";
      return 2;
    }
    sink = std::make_unique<trace::JsonlSink>(trace_file);
  }

  trace::EventLog events(scheduler);
  std::unique_ptr<trace::NetTap> tap;

  int exit_code = 1;
  try {
    // Declared before the transport and hosts: both register snapshot
    // callbacks and (hosts) unregister in their destructors.
    util::MetricsRegistry registry;
    transport::UdpTransport transport(scheduler, codec, std::move(tcfg));
    transport.register_metrics(registry);

    // Source-broadcast -> local-delivery latency. Fully populated in
    // --all-hosts mode; in --host mode only deliveries on this process's
    // hosts of locally originated broadcasts land here (usually none).
    util::Histogram& delivery_latency = registry.histogram(
        "delivery.latency_seconds", trace::MetricSampler::latency_bounds(),
        "", "Source broadcast to first local delivery, seconds");
    std::map<util::Seq, util::TimePoint> broadcast_at;

    if (sink != nullptr) {
      std::ostringstream topo;
      topo << "udp-" << all_hosts.size() << "-hosts";
      sink->record(trace::run_manifest(cfg.seed, topo.str(), "paper",
                                       trace::describe_config(cfg.protocol)));
      events.set_sink(sink.get());
      tap = std::make_unique<trace::NetTap>(scheduler, *sink);
      transport.set_observer(tap.get());
    }

    util::RngFactory rngs(cfg.seed);
    std::vector<std::unique_ptr<core::BroadcastHost>> hosts;
    hosts.reserve(local_hosts.size());
    for (const HostId h : local_hosts) {
      hosts.push_back(std::make_unique<core::BroadcastHost>(
          transport, h, cfg.source, all_hosts, cfg.protocol,
          rngs.stream("host.jitter", h.value),
          [&](util::Seq seq, std::string_view) {
            const auto it = broadcast_at.find(seq);
            if (it == broadcast_at.end()) return;
            delivery_latency.add(
                util::to_seconds(scheduler.now() - it->second));
          }));
      hosts.back()->set_observer(&events);
      hosts.back()->register_metrics(
          registry, "host=\"" + std::to_string(h.value) + "\"");
    }
    for (auto& host : hosts) host->start();

    // --- workload: the source streams `messages` broadcasts ----------------

    core::BroadcastHost* source = nullptr;
    for (auto& host : hosts) {
      if (host->is_source()) source = host.get();
    }
    int sent = 0;
    std::function<void()> send_next = [&] {
      if (source == nullptr || sent >= cfg.messages) return;
      ++sent;
      const util::Seq seq =
          source->broadcast(std::string(cfg.protocol.data_bytes, 'x'));
      broadcast_at[seq] = scheduler.now();
      if (sent < cfg.messages) scheduler.after(cfg.interval, send_next);
    };
    if (source != nullptr && cfg.messages > 0) {
      scheduler.after(cfg.interval, send_next);
    }

    // --- convergence poll ---------------------------------------------------

    // Every locally hosted instance must hold seqs 1..messages; once true,
    // stop the loop early instead of sleeping out the deadline.
    util::TimePoint converged_at = -1;
    std::function<void()> poll = [&] {
      bool done = sent >= cfg.messages || source == nullptr;
      for (auto& host : hosts) {
        done = done &&
               host->info().count() == static_cast<std::uint64_t>(cfg.messages);
      }
      if (done) {
        converged_at = scheduler.now();
        scheduler.stop();
        return;
      }
      scheduler.after(util::milliseconds(200), poll);
    };
    scheduler.after(util::milliseconds(200), poll);

    // --- admin endpoint (observation-only, out of band) ---------------------

    std::unique_ptr<trace::AdminServer> admin;
    if (cfg.admin_port >= 0) {
      admin = std::make_unique<trace::AdminServer>(
          scheduler, static_cast<std::uint16_t>(cfg.admin_port));
      trace::AdminServer* srv = admin.get();
      registry.register_counter_fn("admin.requests", "",
                                   "Admin GETs routed to a handler",
                                   [srv] { return srv->stats().requests; });
      registry.register_counter_fn(
          "admin.bad_requests", "",
          "Malformed, oversized or non-GET admin requests",
          [srv] { return srv->stats().bad_requests; });
      registry.register_gauge_fn(
          "admin.open_connections", "", "Admin connections currently open",
          [srv] { return static_cast<double>(srv->open_connections()); });

      const auto make_status = [&] {
        trace::StatusDoc doc;
        doc.now_s = util::to_seconds(scheduler.now());
        doc.ready = converged_at >= 0;
        doc.source = cfg.source.value;
        doc.messages_expected = cfg.messages;
        doc.messages_sent = sent;
        for (const auto& host : hosts) {
          trace::HostStatus hs;
          hs.id = host->self().value;
          hs.source = host->is_source();
          const HostId parent = host->parent();
          hs.parent = parent.valid() ? parent.value : -1;
          hs.orphan = !host->is_source() && !parent.valid();
          hs.leader = !parent.valid() || !host->state().in_cluster(parent);
          hs.info_count = host->info().count();
          hs.max_seq = host->info().max_seq();
          hs.deliveries = host->counters().deliveries;
          hs.decode_errors = host->counters().decode_errors;
          hs.auth_rejects = host->counters().auth_rejects;
          for (const HostId j : host->state().cluster()) {
            hs.cluster.push_back(j.value);
          }
          doc.hosts.push_back(std::move(hs));
        }
        doc.metrics = registry.snapshot();
        return doc;
      };

      admin->handle("/metrics", [&registry] {
        std::ostringstream os;
        trace::write_prometheus(os, registry.snapshot());
        trace::AdminServer::Response r;
        r.content_type = "text/plain; version=0.0.4; charset=utf-8";
        r.body = os.str();
        return r;
      });
      admin->handle("/status", [make_status] {
        trace::AdminServer::Response r;
        r.content_type = "application/json";
        r.body = trace::status_json(make_status());
        return r;
      });
      admin->handle("/healthz", [&converged_at] {
        trace::AdminServer::Response r;
        if (converged_at >= 0) {
          r.body = "ok\n";
        } else {
          r.status = 503;
          r.body = "not ready\n";
        }
        return r;
      });
      // Ends a --linger-s wait early (smoke tests); the stop is delayed a
      // beat so the response drains before the loop exits.
      admin->handle("/quit", [&scheduler] {
        scheduler.after(util::milliseconds(50), [&scheduler] {
          scheduler.stop();
        });
        trace::AdminServer::Response r;
        r.body = "bye\n";
        return r;
      });

      std::cout << "admin: http://127.0.0.1:" << admin->port() << "\n"
                << std::flush;
      if (!cli.admin_port_file.empty()) {
        std::ofstream pf(cli.admin_port_file);
        pf << admin->port() << "\n";
        if (!pf) {
          std::cerr << "cannot write " << cli.admin_port_file << "\n";
          return 2;
        }
      }
    }

    scheduler.run_until(cfg.run_for);

    // --- report -------------------------------------------------------------

    const auto& stats = transport.stats();
    std::cout << "hosts: " << hosts.size() << "/" << all_hosts.size()
              << " local  messages: " << sent << "/" << cfg.messages
              << "  seed: " << cfg.seed << "\n";
    std::cout << "datagrams: " << stats.datagrams_sent << " sent, "
              << stats.datagrams_received << " received, "
              << stats.frame_decode_errors << " frame errors, "
              << stats.payload_decode_errors << " payload errors, "
              << stats.impair_drops << " impaired away\n";
    if (converged_at >= 0) {
      std::cout << "converged: yes at " << util::to_seconds(converged_at)
                << "s\n";
      exit_code = 0;
    } else {
      std::cout << "converged: NO within " << util::to_seconds(cfg.run_for)
                << "s\n";
      for (auto& host : hosts) {
        if (host->info().count() ==
            static_cast<std::uint64_t>(cfg.messages)) {
          continue;
        }
        std::cout << "  h" << host->self().value << " holds "
                  << host->info().count() << "/" << cfg.messages << "\n";
      }
      exit_code = 1;
    }
    // Keep the admin endpoint up after the verdict so scrapers (and the
    // smoke's rbcast_top) can observe the final state; GET /quit ends the
    // wait early. Hosts stay alive so /status keeps answering.
    if (admin != nullptr && cli.linger_s > 0) {
      std::cout << "admin: lingering " << cli.linger_s << "s\n" << std::flush;
      scheduler.run_for(util::from_seconds(cli.linger_s));
    }
    // Hosts detach from the transport here, before either dies.
    hosts.clear();
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  if (sink != nullptr) {
    sink->close();
    std::cerr << "wrote " << cli.trace_out << "\n";
  }
  return exit_code;
}
