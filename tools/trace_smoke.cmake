# End-to-end trace smoke driven by the trace_cli_smoke ctest: run a small
# traced scenario through rbcast_sim, then exercise every rbcast_trace
# query mode over the resulting JSONL file.
set(trace_file ${WORK_DIR}/trace_smoke.jsonl)
set(chrome_file ${WORK_DIR}/trace_smoke.chrome.json)

execute_process(
  COMMAND ${RBCAST_SIM} --clusters 2 --hosts 2 --messages 5 --seed 3
          --trace-out ${trace_file} --chrome-trace ${chrome_file}
          --sample-period-ms 500
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "rbcast_sim traced run failed (${rc}):\n${out}${err}")
endif()
if(NOT out MATCHES "manifest: seed=3")
  message(FATAL_ERROR "rbcast_sim stdout lacks the run manifest:\n${out}")
endif()

foreach(mode_args IN ITEMS "--summary" "--timeline;1" "--lineage;2"
                           "--convergence")
  execute_process(
    COMMAND ${RBCAST_TRACE} ${mode_args} ${trace_file}
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "rbcast_trace ${mode_args} failed (${rc}):\n${out}${err}")
  endif()
endforeach()
message(STATUS "trace smoke passed: ${trace_file}")
