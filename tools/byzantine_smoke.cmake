# End-to-end Byzantine smoke driven by the byzantine_cli_smoke ctest:
#   1. the defended spec (auth on, data-plane adversary) must come back
#      clean and contained on every seed,
#   2. the undefended known-bad spec must be caught with a /byzantine
#      signature, shrunk, and written as repro.json with its adversary
#      schedule (byz_* events) inside,
#   3. rbcast_sim --chaos-spec must replay the repro to the same
#      violation, deterministically (two replays, identical output).
set(out_dir ${WORK_DIR}/byzantine_smoke)
file(MAKE_DIRECTORY ${out_dir})

execute_process(
  COMMAND ${RBCAST_CHAOS} --spec ${GOOD_SPEC} --runs 8 --seed 1
          --out ${out_dir}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "defended byzantine runs not clean (${rc}):\n${out}${err}")
endif()
if(NOT out MATCHES "all 8 chaos runs clean")
  message(FATAL_ERROR "unexpected rbcast_chaos output:\n${out}")
endif()
if(NOT out MATCHES "contained=yes")
  message(FATAL_ERROR "defended run not contained:\n${out}")
endif()

execute_process(
  COMMAND ${RBCAST_CHAOS} --spec ${BAD_SPEC} --runs 1 --seed 1
          --shrink-attempts 60 --out ${out_dir}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR
    "known-bad byzantine spec should exit 1, got ${rc}:\n${out}${err}")
endif()
if(NOT out MATCHES "VIOLATION \\(signature [A-Z0-9]+/byzantine\\)")
  message(FATAL_ERROR "violation lacks a /byzantine signature:\n${out}")
endif()
if(NOT out MATCHES "contained=no")
  message(FATAL_ERROR "undefended violation reported as contained:\n${out}")
endif()
if(NOT EXISTS ${out_dir}/repro.json OR NOT EXISTS ${out_dir}/repro.jsonl)
  message(FATAL_ERROR "repro artifacts missing in ${out_dir}")
endif()
file(READ ${out_dir}/repro.json repro)
if(NOT repro MATCHES "\"byz_")
  message(FATAL_ERROR
    "shrunk repro lost its adversary schedule:\n${repro}")
endif()

# Violation text can contain semicolons, so plain variables, not lists.
foreach(attempt first second)
  execute_process(
    COMMAND ${RBCAST_SIM} --chaos-spec ${out_dir}/repro.json --chaos-seed 1
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 1)
    message(FATAL_ERROR
      "repro replay should exit 1 (violation), got ${rc}:\n${out}${err}")
  endif()
  if(NOT out MATCHES "invariant violations:")
    message(FATAL_ERROR "replay output lacks violations:\n${out}")
  endif()
  set(${attempt} "${out}")
endforeach()
if(NOT first STREQUAL second)
  message(FATAL_ERROR
    "replay is not deterministic:\n--- first ---\n${first}\n--- second ---\n${second}")
endif()
message(STATUS "byzantine smoke passed: ${out_dir}")
