# Runs bench_congestion --json and gates it against the committed baseline
# (BENCH_congestion.json). Covers both the E5 burst-backlog rows and the
# E5b sustained-overload rows that pin the batched data plane's win
# (batched throughput strictly above unbatched, p99 no worse). The metrics
# are virtual-time results of seeded simulations, so the comparison is
# exact-by-construction; the 1.1x threshold exists only to tolerate
# deliberate sub-10% baseline drift during reviewed behavior changes.
set(current ${WORK_DIR}/bench_congestion_current.json)

execute_process(
  COMMAND ${BENCH} --json
  OUTPUT_FILE ${current}
  RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_congestion --json failed (${rc}):\n${err}")
endif()

execute_process(
  COMMAND ${PYTHON} ${COMPARE} ${BASELINE} ${current} --threshold 1.1
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "congestion metrics drifted from BENCH_congestion.json — if intentional, "
    "regenerate with: ./build/bench/bench_congestion --json > "
    "BENCH_congestion.json (${rc}):\n${out}${err}")
endif()
message(STATUS "bench_congestion gate passed")
