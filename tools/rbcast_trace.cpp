// rbcast_trace — offline analysis of JSONL run traces.
//
// Loads a trace written by `rbcast_sim --trace-out` (or any JsonlSink)
// and answers the questions an experimenter asks of a finished run:
// what happened overall, what one host did, how one broadcast message
// propagated, and how the tree converged. --compare diffs two traces of
// the same workload — canonically one simulated and one over real UDP
// sockets (rbcast_node) — on per-host delivery sets.
//
// Examples:
//   rbcast_sim --clusters 4 --messages 20 --trace-out run.jsonl
//   rbcast_trace --summary run.jsonl
//   rbcast_trace --timeline 3 run.jsonl
//   rbcast_trace --lineage 7 run.jsonl
//   rbcast_trace --convergence run.jsonl
//   rbcast_trace --compare sim.jsonl real.jsonl
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "trace/trace_reader.h"

using namespace rbcast;

namespace {

enum class Mode { kSummary, kTimeline, kLineage, kConvergence, kCompare };

struct CliOptions {
  Mode mode = Mode::kSummary;
  std::int32_t host = -1;     // --timeline
  std::uint64_t seq = 0;      // --lineage
  std::string trace_path;
  std::string compare_path;   // second trace, --compare only
};

void usage() {
  std::cout <<
      "rbcast_trace — analyze a JSONL run trace\n\n"
      "usage: rbcast_trace [mode] TRACE.jsonl\n"
      "       rbcast_trace --compare LEFT.jsonl RIGHT.jsonl\n\n"
      "modes (default --summary):\n"
      "  --summary          manifest, record counts, deliveries, drops\n"
      "  --timeline HOST    every record on host HOST's track, in order\n"
      "  --lineage SEQ      the causal relay + gap-fill path of broadcast\n"
      "                     message SEQ across the network\n"
      "  --convergence      attachment / cycle-break timeline and when the\n"
      "                     tree last changed shape\n"
      "  --compare          diff two traces of the same workload on per-host\n"
      "                     delivery sets (sim vs real divergence report);\n"
      "                     exits 1 when they diverge\n"
      "  --help             this text\n\n"
      "Traces come from `rbcast_sim --trace-out F`, `rbcast_node "
      "--trace-out F`,\nor any trace::JsonlSink.\n";
}

bool parse(int argc, char** argv, CliOptions& options) {
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      return nullptr;
    }
    return argv[++i];
  };
  int paths = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = nullptr;
    if (arg == "--help" || arg == "-h") {
      usage();
      std::exit(0);
    } else if (arg == "--summary") {
      options.mode = Mode::kSummary;
    } else if (arg == "--convergence") {
      options.mode = Mode::kConvergence;
    } else if (arg == "--compare") {
      options.mode = Mode::kCompare;
    } else if (arg == "--timeline") {
      if ((value = need_value(i)) == nullptr) return false;
      options.mode = Mode::kTimeline;
      options.host = std::atoi(value);
    } else if (arg == "--lineage") {
      if ((value = need_value(i)) == nullptr) return false;
      options.mode = Mode::kLineage;
      options.seq = std::strtoull(value, nullptr, 10);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag: " << arg << " (try --help)\n";
      return false;
    } else if (paths == 0) {
      options.trace_path = arg;
      ++paths;
    } else if (paths == 1) {
      options.compare_path = arg;
      ++paths;
    } else {
      std::cerr << "more than two trace files given\n";
      return false;
    }
  }
  const int want = options.mode == Mode::kCompare ? 2 : 1;
  if (paths < want) {
    std::cerr << (want == 2 ? "--compare needs two trace files"
                            : "no trace file given")
              << " (try --help)\n";
    return false;
  }
  if (paths > want) {
    std::cerr << "more than one trace file given\n";
    return false;
  }
  return true;
}

// Loads one JSONL trace, exiting the process on unreadable/malformed input.
std::vector<trace::TraceRecord> load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    std::exit(2);
  }
  std::vector<trace::TraceRecord> records;
  std::string error;
  if (!trace::read_jsonl(in, &records, &error)) {
    std::cerr << path << ": " << error << "\n";
    std::exit(2);
  }
  if (records.empty()) {
    std::cerr << path << ": empty trace\n";
    std::exit(1);
  }
  return records;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!parse(argc, argv, cli)) return 2;

  const std::vector<trace::TraceRecord> records = load_trace(cli.trace_path);

  switch (cli.mode) {
    case Mode::kSummary:
      trace::print_summary(std::cout, records);
      break;
    case Mode::kTimeline: {
      const auto track = trace::timeline(records, cli.host);
      if (track.empty()) {
        std::cerr << "no records for host " << cli.host << "\n";
        return 1;
      }
      for (const auto& r : track) trace::print_record(std::cout, r);
      break;
    }
    case Mode::kLineage: {
      const auto steps = trace::lineage(records, cli.seq);
      if (steps.empty()) {
        std::cerr << "no records for seq " << cli.seq
                  << " (trace ids require the paper or basic protocol)\n";
        return 1;
      }
      trace::print_lineage(std::cout, steps, cli.seq);
      break;
    }
    case Mode::kConvergence:
      trace::print_convergence(std::cout, records);
      break;
    case Mode::kCompare: {
      const std::vector<trace::TraceRecord> right =
          load_trace(cli.compare_path);
      const trace::TraceComparison cmp = trace::compare_traces(records, right);
      trace::print_comparison(std::cout, cmp, cli.trace_path,
                              cli.compare_path);
      return cmp.match ? 0 : 1;
    }
  }
  return 0;
}
