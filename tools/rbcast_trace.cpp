// rbcast_trace — offline analysis of JSONL run traces.
//
// Loads a trace written by `rbcast_sim --trace-out` (or any JsonlSink)
// and answers the questions an experimenter asks of a finished run:
// what happened overall, what one host did, how one broadcast message
// propagated, and how the tree converged.
//
// Examples:
//   rbcast_sim --clusters 4 --messages 20 --trace-out run.jsonl
//   rbcast_trace --summary run.jsonl
//   rbcast_trace --timeline 3 run.jsonl
//   rbcast_trace --lineage 7 run.jsonl
//   rbcast_trace --convergence run.jsonl
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "trace/trace_reader.h"

using namespace rbcast;

namespace {

enum class Mode { kSummary, kTimeline, kLineage, kConvergence };

struct CliOptions {
  Mode mode = Mode::kSummary;
  std::int32_t host = -1;     // --timeline
  std::uint64_t seq = 0;      // --lineage
  std::string trace_path;
};

void usage() {
  std::cout <<
      "rbcast_trace — analyze a JSONL run trace\n\n"
      "usage: rbcast_trace [mode] TRACE.jsonl\n\n"
      "modes (default --summary):\n"
      "  --summary          manifest, record counts, deliveries, drops\n"
      "  --timeline HOST    every record on host HOST's track, in order\n"
      "  --lineage SEQ      the causal relay + gap-fill path of broadcast\n"
      "                     message SEQ across the network\n"
      "  --convergence      attachment / cycle-break timeline and when the\n"
      "                     tree last changed shape\n"
      "  --help             this text\n\n"
      "Traces come from `rbcast_sim --trace-out F` or any "
      "trace::JsonlSink.\n";
}

bool parse(int argc, char** argv, CliOptions& options) {
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      return nullptr;
    }
    return argv[++i];
  };
  bool have_path = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = nullptr;
    if (arg == "--help" || arg == "-h") {
      usage();
      std::exit(0);
    } else if (arg == "--summary") {
      options.mode = Mode::kSummary;
    } else if (arg == "--convergence") {
      options.mode = Mode::kConvergence;
    } else if (arg == "--timeline") {
      if ((value = need_value(i)) == nullptr) return false;
      options.mode = Mode::kTimeline;
      options.host = std::atoi(value);
    } else if (arg == "--lineage") {
      if ((value = need_value(i)) == nullptr) return false;
      options.mode = Mode::kLineage;
      options.seq = std::strtoull(value, nullptr, 10);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag: " << arg << " (try --help)\n";
      return false;
    } else {
      if (have_path) {
        std::cerr << "more than one trace file given\n";
        return false;
      }
      options.trace_path = arg;
      have_path = true;
    }
  }
  if (!have_path) {
    std::cerr << "no trace file given (try --help)\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!parse(argc, argv, cli)) return 2;

  std::ifstream in(cli.trace_path);
  if (!in) {
    std::cerr << "cannot open " << cli.trace_path << "\n";
    return 2;
  }
  std::vector<trace::TraceRecord> records;
  std::string error;
  if (!trace::read_jsonl(in, &records, &error)) {
    std::cerr << cli.trace_path << ": " << error << "\n";
    return 2;
  }
  if (records.empty()) {
    std::cerr << cli.trace_path << ": empty trace\n";
    return 1;
  }

  switch (cli.mode) {
    case Mode::kSummary:
      trace::print_summary(std::cout, records);
      break;
    case Mode::kTimeline: {
      const auto track = trace::timeline(records, cli.host);
      if (track.empty()) {
        std::cerr << "no records for host " << cli.host << "\n";
        return 1;
      }
      for (const auto& r : track) trace::print_record(std::cout, r);
      break;
    }
    case Mode::kLineage: {
      const auto steps = trace::lineage(records, cli.seq);
      if (steps.empty()) {
        std::cerr << "no records for seq " << cli.seq
                  << " (trace ids require the paper or basic protocol)\n";
        return 1;
      }
      trace::print_lineage(std::cout, steps, cli.seq);
      break;
    }
    case Mode::kConvergence:
      trace::print_convergence(std::cout, records);
      break;
  }
  return 0;
}
