// rbcast_chaos — randomized fault-schedule search with online invariant
// monitoring and auto-shrinking reproducers.
//
// Runs N seeded chaos scenarios from one ChaosSpec (or the built-in
// default: a 4-cluster WAN under outages, crashes, partitions and
// flapping). Every run executes under the InvariantMonitor (safety
// invariants I1-I5 plus liveness C1-C3). On the first violation the spec
// is delta-debugged down to a minimal concrete reproducer, written as
// repro.json alongside a JSONL trace of the minimized failing run.
//
// Examples:
//   rbcast_chaos --runs 64 --seed 1
//   rbcast_chaos --spec my_spec.json --runs 16 --out /tmp/chaos
//   rbcast_sim --chaos-spec repro.json --chaos-seed 7   # replay
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "rbcast.h"

using namespace rbcast;

namespace {

struct CliOptions {
  std::string spec_path;       // empty: built-in default spec
  int runs = 16;
  std::uint64_t seed = 1;
  std::string out_dir = ".";
  int shrink_attempts = 120;
  bool shrink = true;
  bool print_spec = false;
};

void usage() {
  std::cout <<
      "rbcast_chaos — randomized fault-schedule search\n\n"
      "  --spec F              chaos spec JSON (default: built-in spec)\n"
      "  --runs N              seeded scenarios to run (default 16)\n"
      "  --seed N              base seed; run k uses seed N+k (default 1)\n"
      "  --out DIR             where to write repro.json / repro.jsonl\n"
      "                        (default .)\n"
      "  --shrink-attempts N   max re-runs while minimizing (default 120)\n"
      "  --no-shrink           write the failing spec without minimizing\n"
      "  --print-spec          print the effective spec and exit\n"
      "  --help                this text\n\n"
      "exit status: 0 all runs clean, 1 violation found, 2 usage error\n";
}

bool parse(int argc, char** argv, CliOptions& options) {
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = nullptr;
    if (arg == "--help" || arg == "-h") {
      usage();
      std::exit(0);
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (arg == "--print-spec") {
      options.print_spec = true;
    } else if (arg == "--spec") {
      if ((value = need_value(i)) == nullptr) return false;
      options.spec_path = value;
    } else if (arg == "--runs") {
      if ((value = need_value(i)) == nullptr) return false;
      options.runs = std::atoi(value);
    } else if (arg == "--seed") {
      if ((value = need_value(i)) == nullptr) return false;
      options.seed = std::strtoull(value, nullptr, 10);
    } else if (arg == "--out") {
      if ((value = need_value(i)) == nullptr) return false;
      options.out_dir = value;
    } else if (arg == "--shrink-attempts") {
      if ((value = need_value(i)) == nullptr) return false;
      options.shrink_attempts = std::atoi(value);
    } else {
      std::cerr << "unknown flag: " << arg << " (try --help)\n";
      return false;
    }
  }
  if (options.runs < 1 || options.shrink_attempts < 1) {
    std::cerr << "--runs and --shrink-attempts must be positive\n";
    return false;
  }
  return true;
}

void print_violations(const std::vector<harness::InvariantViolation>& vs) {
  for (const auto& v : vs) {
    std::cout << "    [" << v.invariant << "] t=" << sim::to_seconds(v.at)
              << "s: " << v.description << "\n";
  }
}

// Writes the minimized spec and a JSONL trace of its failing run; prints
// the two-line reproduction recipe.
int emit_repro(const harness::ChaosSpec& spec, std::uint64_t seed,
               const std::string& out_dir) {
  const std::string json_path = out_dir + "/repro.json";
  const std::string trace_path = out_dir + "/repro.jsonl";
  {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    out << to_json(spec);
  }
  {
    std::ofstream trace_file(trace_path);
    if (!trace_file) {
      std::cerr << "cannot write " << trace_path << "\n";
      return 1;
    }
    trace::JsonlSink sink(trace_file);
    (void)harness::run_chaos(spec, seed, &sink);
    sink.close();
  }
  std::cout << "\nwrote " << json_path << " and " << trace_path << "\n"
            << "replay: rbcast_sim --chaos-spec " << json_path
            << " --chaos-seed " << seed << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!parse(argc, argv, cli)) return 2;

  harness::ChaosSpec spec;
  if (!cli.spec_path.empty()) {
    try {
      spec = harness::load_chaos_spec(cli.spec_path);
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return 2;
    }
  }
  if (cli.print_spec) {
    std::cout << to_json(spec);
    return 0;
  }

  for (int k = 0; k < cli.runs; ++k) {
    const std::uint64_t seed = cli.seed + static_cast<std::uint64_t>(k);
    harness::ChaosRunResult result;
    try {
      result = harness::run_chaos(spec, seed);
    } catch (const std::exception& e) {
      std::cerr << "run " << k << " (seed " << seed << ") failed: " << e.what()
                << "\n";
      return 2;
    }
    if (!result.violated()) {
      std::cout << "run " << k << " seed=" << seed << " ok"
                << (result.delivered_all ? "" : " (incomplete)")
                << " completion=" << result.completion_s << "s";
      if (!result.containment.byzantine.empty()) {
        std::cout << " auth_rejects=" << result.auth_rejects << " "
                  << to_string(result.containment);
      }
      std::cout << "\n";
      continue;
    }

    std::cout << "run " << k << " seed=" << seed << " VIOLATION (signature "
              << harness::violation_signature(result.violations.front())
              << ")\n";
    std::cout << "  " << result.manifest << "\n";
    if (!result.containment.byzantine.empty()) {
      std::cout << "  auth_rejects=" << result.auth_rejects << " "
                << to_string(result.containment) << "\n";
    }
    print_violations(result.violations);

    harness::ChaosSpec repro = harness::concretize(spec, seed);
    if (cli.shrink) {
      std::cout << "  shrinking (max " << cli.shrink_attempts
                << " attempts)...\n";
      const harness::ShrinkResult shrunk =
          harness::shrink_chaos(spec, seed, cli.shrink_attempts);
      std::cout << "  minimized: " << shrunk.events_before << " -> "
                << shrunk.events_after << " fault events in "
                << shrunk.attempts << " runs; violations of the repro:\n";
      print_violations(shrunk.violations);
      repro = shrunk.spec;
    }
    return emit_repro(repro, seed, cli.out_dir);
  }

  std::cout << "all " << cli.runs << " chaos runs clean\n";
  return 0;
}
