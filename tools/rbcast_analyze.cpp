// rbcast_analyze — whole-repo structural analysis with a ratcheted gate.
//
// Runs the three passes documented in tools/analyze/analyze_engine.h
// (layer DAG over the include graph, shared-mutable-state census, hot-path
// allocation scan) over src/ and compares per-rule counts against the
// committed baseline (ANALYSIS_baseline.json). The gate is a ratchet: any
// count rising over the baseline fails; counts falling prints a reminder
// to shrink the baseline, and --update-baseline refuses to raise any
// number, so the baseline can only ever go down.
//
// Usage:
//   rbcast_analyze [repo-root] [options]
//     --baseline FILE    compare against a committed ratchet (gate mode)
//     --update-baseline  rewrite --baseline FILE with the (lower) counts
//     --json FILE        write the full findings report
//     --dot FILE         write the include graph as Graphviz DOT
//     --quiet            suppress per-finding output
//
// Exit codes: 0 clean (or no regression in gate mode), 1 findings or
// ratchet regression, 2 usage/IO error.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyze_engine.h"

namespace fs = std::filesystem;

namespace {

bool analyzable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cpp";
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool write_file(const fs::path& p, const std::string& contents) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out << contents;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::string baseline_path;
  std::string json_path;
  std::string dot_path;
  bool update_baseline = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "rbcast_analyze: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--baseline") {
      baseline_path = value("--baseline");
    } else if (arg == "--update-baseline") {
      update_baseline = true;
    } else if (arg == "--json") {
      json_path = value("--json");
    } else if (arg == "--dot") {
      dot_path = value("--dot");
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "rbcast_analyze: unknown option " << arg << "\n";
      return 2;
    } else {
      root = arg;
    }
  }
  if (update_baseline && baseline_path.empty()) {
    std::cerr << "rbcast_analyze: --update-baseline needs --baseline FILE\n";
    return 2;
  }

  const fs::path src = root / "src";
  if (!fs::is_directory(src)) {
    std::cerr << "rbcast_analyze: no src/ under " << root << "\n";
    return 2;
  }

  // Deterministic file order (same discipline as rbcast_lint).
  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (entry.is_regular_file() && analyzable(entry.path())) {
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());

  std::vector<rbcast::analyze::FileInput> files;
  files.reserve(paths.size());
  for (const fs::path& p : paths) {
    files.push_back(rbcast::analyze::FileInput{
        fs::relative(p, root).generic_string(), read_file(p)});
  }

  const rbcast::analyze::AnalysisResult result = rbcast::analyze::analyze(
      files, rbcast::analyze::default_layer_spec(),
      rbcast::analyze::default_hot_spec());
  const rbcast::analyze::Ratchet current = rbcast::analyze::count(result);

  if (!quiet) {
    for (const auto& f : result.findings) {
      std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                << f.message << "\n";
    }
  }

  if (!json_path.empty() &&
      !write_file(json_path, rbcast::analyze::to_json(result))) {
    std::cerr << "rbcast_analyze: cannot write " << json_path << "\n";
    return 2;
  }
  if (!dot_path.empty() &&
      !write_file(dot_path, rbcast::analyze::to_dot(result.include_graph))) {
    std::cerr << "rbcast_analyze: cannot write " << dot_path << "\n";
    return 2;
  }

  std::cout << "rbcast_analyze: " << files.size() << " files, "
            << result.findings.size() << " finding(s), "
            << result.waivers.size() << " waiver(s)\n";

  if (baseline_path.empty()) {
    return result.findings.empty() ? 0 : 1;
  }

  // Gate mode: compare against the committed ratchet.
  const std::string baseline_text = read_file(baseline_path);
  if (baseline_text.empty()) {
    std::cerr << "rbcast_analyze: cannot read baseline " << baseline_path
              << "\n";
    return 2;
  }
  const auto baseline = rbcast::analyze::ratchet_from_json(baseline_text);
  if (!baseline) {
    std::cerr << "rbcast_analyze: malformed baseline " << baseline_path
              << " — the gate fails closed\n";
    return 2;
  }

  const rbcast::analyze::RatchetDiff diff =
      rbcast::analyze::compare_ratchet(*baseline, current);
  for (const std::string& line : diff.lines) {
    std::cout << "rbcast_analyze: " << line << "\n";
  }

  if (update_baseline) {
    if (diff.regressed) {
      std::cerr << "rbcast_analyze: refusing to update baseline: the "
                   "ratchet only shrinks — fix or waive the regressions "
                   "first\n";
      return 1;
    }
    if (!write_file(baseline_path,
                    rbcast::analyze::ratchet_to_json(current) + "\n")) {
      std::cerr << "rbcast_analyze: cannot write " << baseline_path << "\n";
      return 2;
    }
    std::cout << "rbcast_analyze: baseline updated\n";
    return 0;
  }

  if (diff.regressed) {
    std::cout << "rbcast_analyze: RATCHET REGRESSION vs " << baseline_path
              << "\n";
    return 1;
  }
  if (diff.improved) {
    std::cout << "rbcast_analyze: improved vs baseline; shrink it with "
                 "--update-baseline\n";
  }
  std::cout << "rbcast_analyze: no ratchet regression\n";
  return 0;
}
