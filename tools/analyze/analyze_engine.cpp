#include "analyze/analyze_engine.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <functional>
#include <regex>
#include <sstream>
#include <tuple>

#include "analyze/source_scanner.h"
#include "lint/lint_engine.h"

namespace rbcast::analyze {

namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.emplace_back(text.substr(start));
      break;
    }
    lines.emplace_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

bool contains_word(const std::string& s, std::string_view word) {
  std::size_t pos = 0;
  while ((pos = s.find(word, pos)) != std::string::npos) {
    const bool left_ok =
        pos == 0 || !(std::isalnum(static_cast<unsigned char>(s[pos - 1])) ||
                      s[pos - 1] == '_');
    const std::size_t end = pos + word.size();
    const bool right_ok =
        end >= s.size() ||
        !(std::isalnum(static_cast<unsigned char>(s[end])) || s[end] == '_');
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

// Layer of a src/ file: the first directory component under src/, or ""
// for files directly under src/ (the umbrella header), which are exempt.
std::string layer_of(std::string_view path) {
  if (!starts_with(path, "src/")) return "";
  const std::string_view rest = path.substr(4);
  const std::size_t slash = rest.find('/');
  if (slash == std::string_view::npos) return "";
  return std::string(rest.substr(0, slash));
}

// Resolves a quoted include against the analyzed file set: `target`
// matches path P when P == target or P ends with "/target" (the repo
// compiles with -I src, so "core/foo.h" resolves to "src/core/foo.h").
std::string resolve_include(const std::string& target,
                            const std::set<std::string>& known) {
  if (known.contains(target)) return target;
  const std::string suffix = "/" + target;
  for (const std::string& p : known) {
    if (p.size() > suffix.size() &&
        p.compare(p.size() - suffix.size(), suffix.size(), suffix) == 0) {
      return p;
    }
  }
  return "";
}

struct IncludeEdge {
  std::string to;  // resolved repo-relative path
  int line;
};

// The stripper blanks string-literal contents, so the directive shape is
// matched on the stripped line (which kills commented-out includes) while
// the path itself is captured from the original line.
std::vector<IncludeEdge> extract_includes(
    const std::vector<std::string>& code_lines,
    const std::vector<std::string>& orig_lines,
    const std::set<std::string>& known) {
  std::vector<IncludeEdge> edges;
  static const std::regex shape_re(R"(^\s*#\s*include\s*")");
  static const std::regex path_re(R"(#\s*include\s*"([^"]+)\")");
  for (std::size_t n = 0; n < code_lines.size() && n < orig_lines.size();
       ++n) {
    if (!std::regex_search(code_lines[n], shape_re)) continue;
    std::smatch m;
    if (std::regex_search(orig_lines[n], m, path_re)) {
      const std::string resolved = resolve_include(m.str(1), known);
      if (!resolved.empty()) {
        edges.push_back(IncludeEdge{resolved, static_cast<int>(n) + 1});
      }
    }
  }
  return edges;
}

// --- hot-function matching ----------------------------------------------

bool pattern_matches(const std::string& pattern, const std::string& method) {
  if (pattern == "*") return true;
  if (!pattern.empty() && pattern.back() == '*') {
    return starts_with(method, std::string_view(pattern).substr(
                                   0, pattern.size() - 1));
  }
  return pattern == method;
}

// `qualified` is "Class::method" (scanner output). Destructors and
// constructors ("Class::Class") participate like any other method.
bool is_hot(const HotSpec& hot, const std::string& qualified) {
  const std::size_t sep = qualified.rfind("::");
  if (sep == std::string::npos) return false;
  const std::string cls = qualified.substr(0, sep);
  const std::string method = qualified.substr(sep + 2);
  for (const auto& [hot_cls, pattern] : hot.functions) {
    if (cls == hot_cls && pattern_matches(pattern, method)) return true;
  }
  return false;
}

// --- waivers ------------------------------------------------------------

struct WaiverSite {
  std::string rule;
  std::string reason;
  bool used{false};
};

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t");
  const auto last = s.find_last_not_of(" \t\r");
  if (first == std::string::npos) return "";
  return s.substr(first, last - first + 1);
}

// Collects "// analyze:allow(rule) reason" comments, keyed by line.
std::map<int, WaiverSite> collect_waivers(
    const std::vector<std::string>& orig_lines) {
  std::map<int, WaiverSite> waivers;
  static const std::regex allow_re(
      R"(//\s*analyze:allow\(([A-Za-z0-9_-]+)\)\s*(.*))");
  for (std::size_t n = 0; n < orig_lines.size(); ++n) {
    std::smatch m;
    if (std::regex_search(orig_lines[n], m, allow_re)) {
      waivers[static_cast<int>(n) + 1] =
          WaiverSite{m.str(1), trim(m.str(2)), false};
    }
  }
  return waivers;
}

// --- per-file analysis context ------------------------------------------

struct FileAnalysis {
  std::string path;
  std::string code;                       // comment-stripped
  std::vector<std::string> orig_lines;
  std::vector<std::string> code_lines;
  std::map<int, WaiverSite> waivers;
  std::vector<Finding> raw;               // findings before waiver filter
};

void add(FileAnalysis& fa, int line, std::string rule, std::string message) {
  fa.raw.push_back(
      Finding{fa.path, line, std::move(rule), std::move(message)});
}

// --- state census -------------------------------------------------------

// Extracts the declared variable name from a collapsed declaration
// statement: the last identifier before '=' (or before the end when there
// is no initializer).
std::string declared_name(const std::string& stmt) {
  std::string decl = stmt.substr(0, stmt.find('='));
  static const std::regex id_re(R"(([A-Za-z_]\w*))");
  std::string last;
  for (std::sregex_iterator it(decl.begin(), decl.end(), id_re), end;
       it != end; ++it) {
    last = it->str(1);
  }
  return last;
}

bool is_immutable_decl(const std::string& stmt) {
  return contains_word(stmt, "const") || contains_word(stmt, "constexpr") ||
         contains_word(stmt, "constinit");
}

bool is_not_a_variable(const std::string& stmt) {
  return contains_word(stmt, "using") || contains_word(stmt, "typedef") ||
         contains_word(stmt, "friend") || contains_word(stmt, "template") ||
         contains_word(stmt, "static_assert") ||
         contains_word(stmt, "return") || contains_word(stmt, "extern") ||
         contains_word(stmt, "operator") || starts_with(stmt, "#") ||
         // Forward declarations ("struct Config") and enum declarations.
         contains_word(stmt, "class") || contains_word(stmt, "struct") ||
         contains_word(stmt, "union") || contains_word(stmt, "enum") ||
         // Namespace aliases ("namespace inv = model::invariants").
         contains_word(stmt, "namespace");
}

// True when `stmt` declares a variable (rather than a function): either it
// has no parameter list at all, or an initializer '=' appears before the
// first '('.
bool looks_like_variable(const std::string& stmt) {
  const std::size_t paren = stmt.find('(');
  const std::size_t eq = stmt.find('=');
  if (paren != std::string::npos) {
    return eq != std::string::npos && eq < paren;
  }
  // "int x" / "std::vector<int> v" / "int x = 0" — look only at the
  // declarator before any initializer (the initializer may end in a
  // number) and require at least two identifiers (a type and a name).
  const std::string decl = stmt.substr(0, eq);
  static const std::regex two_ids(R"([A-Za-z_]\w*.*[\s>&*][A-Za-z_]\w*\s*$)");
  return std::regex_search(decl, two_ids);
}

struct LocalStatic {
  std::string function;
  std::string name;
  int line;
};

void census_pass(FileAnalysis& fa) {
  ScopeScanner scanner(fa.code);
  std::vector<LocalStatic> local_statics;
  std::set<std::string> returned;  // "function\0identifier" pairs

  ScopeScanner::Callbacks cb;
  cb.on_statement = [&](const std::string& stmt, int line) {
    if (stmt.empty()) return;
    const bool in_function = !scanner.enclosing_function().empty();

    if (in_function) {
      if (contains_word(stmt, "static") && !is_immutable_decl(stmt) &&
          !contains_word(stmt, "static_assert")) {
        const std::string name = declared_name(stmt);
        if (!name.empty()) {
          local_statics.push_back(
              LocalStatic{scanner.enclosing_function(), name, line});
        }
      }
      static const std::regex ret_re(R"(^return\s+([A-Za-z_]\w*)$)");
      std::smatch m;
      if (std::regex_match(stmt, m, ret_re)) {
        returned.insert(scanner.enclosing_function() + '\0' + m.str(1));
      }
      return;
    }

    if (scanner.at_namespace_scope()) {
      if (is_not_a_variable(stmt) || is_immutable_decl(stmt)) return;
      if (!looks_like_variable(stmt)) return;
      add(fa, line, "mutable-global",
          "namespace-scope mutable variable '" + declared_name(stmt) +
              "': hidden shared state blocks sharded parallel simulation; "
              "make it const, pass it explicitly, or waive with a reason");
      return;
    }

    // Class scope: a non-const static data member is shared mutable state
    // too (one instance across every simulation in the process).
    if (!scanner.enclosing_type().empty() && contains_word(stmt, "static") &&
        !is_immutable_decl(stmt) && !contains_word(stmt, "static_assert") &&
        looks_like_variable(stmt)) {
      add(fa, line, "mutable-global",
          "non-const static data member '" + declared_name(stmt) +
              "' is process-wide shared state; make it per-instance or "
              "const");
    }
  };

  scanner.run(cb);

  for (const LocalStatic& ls : local_statics) {
    if (returned.contains(ls.function + '\0' + ls.name)) {
      add(fa, ls.line, "singleton",
          "function-local static '" + ls.name + "' returned from '" +
              ls.function +
              "' is a singleton; shared across all simulations in the "
              "process — a shard-parallel run needs it per-instance");
    } else {
      add(fa, ls.line, "local-static",
          "function-local static '" + ls.name + "' in '" + ls.function +
              "' is hidden mutable state; hoist it into the owning object "
              "or make it constant");
    }
  }
}

// --- hot-path allocation pass -------------------------------------------

const std::regex& alloc_re() {
  static const std::regex re(
      R"(\bnew\b)"
      R"(|\bmake_unique\s*<|\bmake_shared\s*<)"
      R"(|\.\s*(push_back|emplace_back|emplace|insert|resize|reserve|push|append)\s*\()");
  return re;
}

struct HotRegion {
  std::string function;
  int first_line;
  int last_line;
};

void alloc_pass(FileAnalysis& fa, const HotSpec& hot) {
  ScopeScanner scanner(fa.code);
  std::vector<HotRegion> regions;
  // Open hot-function scopes: (stack depth at open, function, start line).
  struct Open {
    std::size_t depth;
    std::string function;
    int line;
  };
  std::vector<Open> open;

  ScopeScanner::Callbacks cb;
  cb.on_scope_open = [&](const std::string&, int line) {
    const Scope& s = scanner.stack().back();
    if (s.kind == ScopeKind::kFunction && is_hot(hot, s.name)) {
      open.push_back(Open{scanner.stack().size(), s.name, line});
    }
  };
  cb.on_scope_close = [&](const Scope&, int line) {
    if (!open.empty() && scanner.stack().size() + 1 == open.back().depth) {
      regions.push_back(
          HotRegion{open.back().function, open.back().line, line});
      open.pop_back();
    }
  };
  scanner.run(cb);

  for (const HotRegion& region : regions) {
    for (int n = region.first_line; n <= region.last_line; ++n) {
      const auto idx = static_cast<std::size_t>(n - 1);
      if (idx >= fa.code_lines.size()) break;
      std::smatch m;
      if (std::regex_search(fa.code_lines[idx], m, alloc_re())) {
        std::string what = m.str(0);
        if (!m.str(1).empty()) what = m.str(1) + "()";
        add(fa, n, "hot-alloc",
            "allocation (" + trim(what) + ") inside hot function '" +
                region.function +
                "'; the event hot path must stay allocation-free for the "
                "10^5-host runs — pool/reserve up front or waive with the "
                "amortization argument");
      }
    }
  }
}

// --- include cycles -----------------------------------------------------

void find_cycles(const std::map<std::string, std::set<std::string>>& graph,
                 std::vector<Finding>& out) {
  // Iterative DFS with colors; reports each back edge as one cycle,
  // reconstructing the path for the message. Deterministic: maps iterate
  // sorted.
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> path;

  std::function<void(const std::string&)> visit =
      [&](const std::string& node) {
        color[node] = 1;
        path.push_back(node);
        auto it = graph.find(node);
        if (it != graph.end()) {
          for (const std::string& next : it->second) {
            if (color[next] == 1) {
              std::string cycle;
              auto start = std::find(path.begin(), path.end(), next);
              for (auto p = start; p != path.end(); ++p) {
                cycle += *p + " -> ";
              }
              cycle += next;
              out.push_back(Finding{
                  node, 0, "include-cycle",
                  "include cycle: " + cycle +
                      "; break it with a forward declaration or by moving "
                      "the shared type down a layer"});
            } else if (color[next] == 0) {
              visit(next);
            }
          }
        }
        color[node] = 2;
        path.pop_back();
      };

  for (const auto& [node, _] : graph) {
    if (color[node] == 0) visit(node);
  }
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

LayerSpec default_layer_spec() {
  LayerSpec spec;
  // util -> sim -> topo -> net -> transport -> core -> trace/model ->
  // harness. A file may include same-rank and lower-rank layers only.
  spec.rank = {
      {"util", 0},  {"sim", 1},   {"topo", 2},  {"net", 3}, {"transport", 4},
      {"core", 5},  {"trace", 6}, {"model", 6}, {"harness", 7},
  };
  // The Transport-extraction precondition: the protocol automaton must not
  // reach into the simulator or the experiment harness even though their
  // ranks would otherwise allow (sim) the edge.
  spec.forbidden = {{"core", "sim"}, {"core", "harness"}};
  // Backend blindness: core sees the network and the transport layer only
  // through their abstract interface headers. Concrete endpoints
  // (net/network.h) and backends (transport/udp_transport.h,
  // transport/sim_transport.h) are off limits even though the rank order
  // would permit them.
  spec.interface_only = {
      {"core", "transport", {"src/transport/transport.h"}},
      {"core", "net", {"src/net/message.h"}},
  };
  return spec;
}

HotSpec default_hot_spec() {
  return HotSpec{{
      {"EventQueue", "*"},
      {"Simulator", "step"},
      {"Simulator", "run_until"},
      {"BroadcastHost", "on_*"},
      {"BroadcastHost", "handle_*"},
      {"SeqSet", "*"},
  }};
}

AnalysisResult analyze(const std::vector<FileInput>& files,
                       const LayerSpec& layers, const HotSpec& hot) {
  AnalysisResult result;

  std::set<std::string> known;
  for (const FileInput& f : files) known.insert(f.path);

  std::vector<FileAnalysis> analyses;
  analyses.reserve(files.size());

  for (const FileInput& f : files) {
    FileAnalysis fa;
    fa.path = f.path;
    fa.code = lint::strip_comments(f.contents);
    fa.orig_lines = split_lines(f.contents);
    fa.code_lines = split_lines(fa.code);
    fa.waivers = collect_waivers(fa.orig_lines);

    // Pass 1: include graph + layer rules.
    const std::string from_layer = layer_of(fa.path);
    for (const IncludeEdge& edge :
         extract_includes(fa.code_lines, fa.orig_lines, known)) {
      result.include_graph[fa.path].insert(edge.to);
      if (from_layer.empty()) continue;  // umbrella header etc.
      const std::string to_layer = layer_of(edge.to);
      if (to_layer.empty()) continue;

      const auto from_rank = layers.rank.find(from_layer);
      const auto to_rank = layers.rank.find(to_layer);
      if (from_rank == layers.rank.end()) {
        add(fa, edge.line, "layer-unknown",
            "layer '" + from_layer +
                "' is not in the declared DAG; add it to the LayerSpec "
                "(tools/analyze) and DESIGN.md §11");
        continue;
      }
      if (to_rank == layers.rank.end()) continue;  // reported at its files

      const bool forbidden =
          std::find(layers.forbidden.begin(), layers.forbidden.end(),
                    std::make_pair(from_layer, to_layer)) !=
          layers.forbidden.end();
      const LayerSpec::InterfaceEdge* iface = nullptr;
      for (const auto& e : layers.interface_only) {
        if (e.from == from_layer && e.to == to_layer) {
          iface = &e;
          break;
        }
      }
      if (forbidden) {
        add(fa, edge.line, "layer-violation",
            "forbidden edge " + from_layer + " -> " + to_layer +
                ": core must stay runnable without the " + to_layer +
                " layer (Transport extraction precondition); depend on the "
                "util abstraction instead");
      } else if (iface != nullptr &&
                 iface->headers.find(edge.to) == iface->headers.end()) {
        add(fa, edge.line, "layer-violation",
            "edge " + from_layer + " -> " + to_layer +
                " is interface-only: '" + edge.to +
                "' is a concrete header; include only the abstract "
                "interface (" + *iface->headers.begin() + ")");
      } else if (to_rank->second > from_rank->second) {
        add(fa, edge.line, "layer-violation",
            "include of '" + edge.to + "' climbs the layer DAG (" +
                from_layer + " rank " + std::to_string(from_rank->second) +
                " -> " + to_layer + " rank " +
                std::to_string(to_rank->second) +
                "); invert the dependency or move the shared type down");
      }
    }

    // Pass 2 + 3 only make sense for C++ sources.
    census_pass(fa);
    alloc_pass(fa, hot);

    analyses.push_back(std::move(fa));
  }

  // Include cycles are a whole-graph property; attribute each to the file
  // that closes the cycle (line 0 — a cycle has no single line).
  std::vector<Finding> cycle_findings;
  find_cycles(result.include_graph, cycle_findings);

  // Apply waivers and collect.
  for (FileAnalysis& fa : analyses) {
    std::sort(fa.raw.begin(), fa.raw.end(),
              [](const Finding& a, const Finding& b) {
                return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
              });
    for (Finding& f : fa.raw) {
      auto it = fa.waivers.find(f.line);
      if (it != fa.waivers.end() && it->second.rule == f.rule) {
        it->second.used = true;
        result.waivers.push_back(
            Waiver{f.file, f.line, f.rule, it->second.reason});
      } else {
        result.findings.push_back(std::move(f));
      }
    }
    // A waiver that matches nothing is itself a finding: stale annotations
    // hide real debt and rot fast.
    for (const auto& [line, site] : fa.waivers) {
      if (!site.used) {
        result.findings.push_back(Finding{
            fa.path, line, "stale-waiver",
            "analyze:allow(" + site.rule +
                ") does not match any finding on this line; remove it"});
      }
    }
  }
  for (Finding& f : cycle_findings) result.findings.push_back(std::move(f));

  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  std::sort(result.waivers.begin(), result.waivers.end(),
            [](const Waiver& a, const Waiver& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return result;
}

std::string to_dot(const std::map<std::string, std::set<std::string>>& graph) {
  // Group nodes into per-layer clusters so the DAG reads top-to-bottom.
  std::map<std::string, std::vector<std::string>> by_layer;
  std::set<std::string> nodes;
  for (const auto& [from, tos] : graph) {
    nodes.insert(from);
    for (const std::string& to : tos) nodes.insert(to);
  }
  for (const std::string& n : nodes) {
    by_layer[layer_of(n).empty() ? "(root)" : layer_of(n)].push_back(n);
  }

  std::ostringstream os;
  os << "digraph includes {\n  rankdir=BT;\n  node [shape=box, "
        "fontsize=10];\n";
  for (const auto& [layer, members] : by_layer) {
    os << "  subgraph \"cluster_" << layer << "\" {\n    label=\"" << layer
       << "\";\n";
    for (const std::string& n : members) {
      os << "    \"" << n << "\";\n";
    }
    os << "  }\n";
  }
  for (const auto& [from, tos] : graph) {
    for (const std::string& to : tos) {
      os << "  \"" << from << "\" -> \"" << to << "\";\n";
    }
  }
  os << "}\n";
  return os.str();
}

Ratchet count(const AnalysisResult& result) {
  Ratchet r;
  for (const Finding& f : result.findings) ++r.findings[f.rule];
  for (const Waiver& w : result.waivers) ++r.waivers[w.rule];
  return r;
}

std::string to_json(const AnalysisResult& result) {
  const Ratchet r = count(result);
  std::ostringstream os;
  os << "{\n  \"findings\": [\n";
  for (std::size_t i = 0; i < result.findings.size(); ++i) {
    const Finding& f = result.findings[i];
    os << "    {\"file\": \"" << json_escape(f.file)
       << "\", \"line\": " << f.line << ", \"rule\": \""
       << json_escape(f.rule) << "\", \"message\": \""
       << json_escape(f.message) << "\"}"
       << (i + 1 < result.findings.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"waivers\": [\n";
  for (std::size_t i = 0; i < result.waivers.size(); ++i) {
    const Waiver& w = result.waivers[i];
    os << "    {\"file\": \"" << json_escape(w.file)
       << "\", \"line\": " << w.line << ", \"rule\": \""
       << json_escape(w.rule) << "\", \"reason\": \""
       << json_escape(w.reason) << "\"}"
       << (i + 1 < result.waivers.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"counts\": " << ratchet_to_json(r) << "\n}\n";
  return os.str();
}

std::string ratchet_to_json(const Ratchet& r) {
  auto emit_map = [](std::ostringstream& os,
                     const std::map<std::string, int>& m) {
    os << "{";
    bool first = true;
    for (const auto& [rule, n] : m) {
      if (!first) os << ", ";
      first = false;
      os << "\"" << json_escape(rule) << "\": " << n;
    }
    os << "}";
  };
  std::ostringstream os;
  os << "{\"findings\": ";
  emit_map(os, r.findings);
  os << ", \"waivers\": ";
  emit_map(os, r.waivers);
  os << "}";
  return os.str();
}

namespace {

// Minimal parser for the exact baseline shape:
//   {"findings": {"rule": int, ...}, "waivers": {...}}
// Anything else returns nullopt (the gate fails closed on a mangled
// baseline rather than silently passing).
struct JsonCursor {
  std::string_view s;
  std::size_t i{0};

  void skip_ws() {
    while (i < s.size() &&
           std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
  }
  bool eat(char c) {
    skip_ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool peek(char c) {
    skip_ws();
    return i < s.size() && s[i] == c;
  }
  std::optional<std::string> string() {
    skip_ws();
    if (!eat('"')) return std::nullopt;
    std::string out;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\' && i + 1 < s.size()) ++i;
      out.push_back(s[i]);
      ++i;
    }
    if (!eat('"')) return std::nullopt;
    return out;
  }
  std::optional<int> integer() {
    skip_ws();
    bool neg = false;
    if (i < s.size() && s[i] == '-') {
      neg = true;
      ++i;
    }
    if (i >= s.size() || !std::isdigit(static_cast<unsigned char>(s[i]))) {
      return std::nullopt;
    }
    long v = 0;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
      v = v * 10 + (s[i] - '0');
      ++i;
    }
    return static_cast<int>(neg ? -v : v);
  }
  std::optional<std::map<std::string, int>> int_map() {
    if (!eat('{')) return std::nullopt;
    std::map<std::string, int> out;
    if (eat('}')) return out;
    while (true) {
      auto key = string();
      if (!key || !eat(':')) return std::nullopt;
      auto val = integer();
      if (!val) return std::nullopt;
      out[*key] = *val;
      if (eat('}')) return out;
      if (!eat(',')) return std::nullopt;
    }
  }
};

}  // namespace

std::optional<Ratchet> ratchet_from_json(std::string_view json) {
  JsonCursor c{json};
  if (!c.eat('{')) return std::nullopt;
  Ratchet r;
  bool saw_findings = false;
  bool saw_waivers = false;
  if (c.eat('}')) return std::nullopt;
  while (true) {
    auto key = c.string();
    if (!key || !c.eat(':')) return std::nullopt;
    auto m = c.int_map();
    if (!m) return std::nullopt;
    if (*key == "findings") {
      r.findings = std::move(*m);
      saw_findings = true;
    } else if (*key == "waivers") {
      r.waivers = std::move(*m);
      saw_waivers = true;
    } else {
      return std::nullopt;
    }
    if (c.eat('}')) break;
    if (!c.eat(',')) return std::nullopt;
  }
  if (!saw_findings || !saw_waivers) return std::nullopt;
  return r;
}

RatchetDiff compare_ratchet(const Ratchet& baseline, const Ratchet& current) {
  RatchetDiff diff;
  auto compare_maps = [&](const std::map<std::string, int>& base,
                          const std::map<std::string, int>& cur,
                          const char* what) {
    std::set<std::string> rules;
    for (const auto& [r, _] : base) rules.insert(r);
    for (const auto& [r, _] : cur) rules.insert(r);
    for (const std::string& rule : rules) {
      const auto b = base.find(rule);
      const auto c = cur.find(rule);
      const int bn = b == base.end() ? 0 : b->second;
      const int cn = c == cur.end() ? 0 : c->second;
      if (cn > bn) {
        diff.regressed = true;
        diff.lines.push_back("REGRESSION " + std::string(what) + " " + rule +
                             ": " + std::to_string(bn) + " -> " +
                             std::to_string(cn));
      } else if (cn < bn) {
        diff.improved = true;
        diff.lines.push_back("improved " + std::string(what) + " " + rule +
                             ": " + std::to_string(bn) + " -> " +
                             std::to_string(cn) +
                             " (shrink the baseline: --update-baseline)");
      }
    }
  };
  compare_maps(baseline.findings, current.findings, "findings");
  compare_maps(baseline.waivers, current.waivers, "waivers");
  return diff;
}

}  // namespace rbcast::analyze
