// Lightweight scope scanner shared by the rbcast_analyze passes.
//
// Walks comment-stripped C++ (see lint::strip_comments) tracking a stack
// of lexical scopes — namespace, type, function, plain block — classified
// from the statement head that precedes each '{'. This is deliberately a
// heuristic, not a parser: it is accurate for the style this codebase
// writes (clang-format, one declaration per statement) and the
// tests/analyze_engine_test.cpp snippets pin the cases that matter
// (member functions, constructor init lists, lambdas, control flow).
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace rbcast::analyze {

enum class ScopeKind { kNamespace, kType, kFunction, kBlock };

struct Scope {
  ScopeKind kind;
  // Namespace/class name, or the (possibly Class::qualified) function
  // name; empty for plain blocks and anonymous namespaces.
  std::string name;
};

class ScopeScanner {
 public:
  // `code` must already be comment/string-stripped. Callbacks observe the
  // walk; any may be null.
  struct Callbacks {
    // A '{' opened a new scope (already pushed; stack().back() is it).
    // `head` is the whitespace-collapsed statement head before the brace.
    std::function<void(const std::string& head, int line)> on_scope_open;
    // A '}' closed `scope` (already popped) at `line`.
    std::function<void(const Scope& scope, int line)> on_scope_close;
    // A statement terminated with ';' at the current scope. `stmt` is the
    // statement text (whitespace-collapsed), `line` where it started.
    std::function<void(const std::string& stmt, int line)> on_statement;
  };

  explicit ScopeScanner(std::string_view code);

  // Runs the walk to completion.
  void run(const Callbacks& callbacks);

  [[nodiscard]] const std::vector<Scope>& stack() const { return stack_; }

  // Innermost enclosing function name ("" when not inside a function).
  // For member functions defined inside a class body, the name is
  // qualified with the innermost enclosing type ("EventQueue::pop").
  [[nodiscard]] std::string enclosing_function() const;

  // True when the walk position is at namespace scope (only namespace
  // scopes on the stack).
  [[nodiscard]] bool at_namespace_scope() const;

  // Innermost enclosing type name ("" when none).
  [[nodiscard]] std::string enclosing_type() const;

 private:
  std::string_view code_;
  std::vector<Scope> stack_;
};

// Classifies the statement head preceding a '{'. Exposed for tests.
// `head` is everything after the previous ';', '{' or '}'.
[[nodiscard]] Scope classify_head(const std::string& head,
                                  const std::vector<Scope>& stack);

}  // namespace rbcast::analyze
