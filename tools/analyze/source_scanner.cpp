#include "analyze/source_scanner.h"

#include <cctype>
#include <regex>

namespace rbcast::analyze {

namespace {

// Collapses runs of whitespace to single spaces and trims the ends.
std::string collapse(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  bool pending_space = false;
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
    } else {
      if (pending_space) out.push_back(' ');
      pending_space = false;
      out.push_back(c);
    }
  }
  return out;
}

bool contains_word(const std::string& s, std::string_view word) {
  std::size_t pos = 0;
  while ((pos = s.find(word, pos)) != std::string::npos) {
    const bool left_ok =
        pos == 0 || !(std::isalnum(static_cast<unsigned char>(s[pos - 1])) ||
                      s[pos - 1] == '_');
    const std::size_t end = pos + word.size();
    const bool right_ok =
        end >= s.size() ||
        !(std::isalnum(static_cast<unsigned char>(s[end])) || s[end] == '_');
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

}  // namespace

Scope classify_head(const std::string& raw_head,
                    const std::vector<Scope>& stack) {
  const std::string head = collapse(raw_head);

  if (contains_word(head, "namespace")) {
    // "namespace rbcast::sim" or anonymous "namespace".
    static const std::regex name_re(R"(namespace\s+([A-Za-z_][\w:]*))");
    std::smatch m;
    std::string name;
    if (std::regex_search(head, m, name_re)) name = m.str(1);
    return Scope{ScopeKind::kNamespace, name};
  }

  if (contains_word(head, "class") || contains_word(head, "struct") ||
      contains_word(head, "union") || contains_word(head, "enum")) {
    // Take the identifier right after the keyword, skipping attributes.
    static const std::regex name_re(
        R"((?:class|struct|union|enum)(?:\s+class|\s+struct)?\s+(?:\[\[[^\]]*\]\]\s*)?([A-Za-z_]\w*))");
    std::smatch m;
    std::string name;
    if (std::regex_search(head, m, name_re)) name = m.str(1);
    return Scope{ScopeKind::kType, name};
  }

  // Control flow and try/catch open plain blocks, as do lambdas ("...] {"
  // or "...]() {") and bare "{" compound statements.
  if (contains_word(head, "if") || contains_word(head, "for") ||
      contains_word(head, "while") || contains_word(head, "switch") ||
      contains_word(head, "do") || contains_word(head, "else") ||
      contains_word(head, "try") || contains_word(head, "catch")) {
    return Scope{ScopeKind::kBlock, ""};
  }

  // A function definition head contains a parameter list. Take the last
  // "name(" group before the parameters' closing paren — this skips
  // return types like "EventQueue::Fired" and matches "Class::method" or
  // plain "method". Constructor init lists ("): a_(x), b_(y)") still
  // resolve to the constructor name because we search the whole head.
  if (head.find('(') != std::string::npos) {
    static const std::regex fn_re(
        R"(([A-Za-z_][\w]*(?:::~?[A-Za-z_][\w]*)*|operator\s*[^\s(]+)\s*\()");
    std::string name;
    for (std::sregex_iterator it(head.begin(), head.end(), fn_re), end;
         it != end; ++it) {
      std::string candidate = it->str(1);
      if (candidate == "decltype" || candidate == "noexcept" ||
          candidate == "sizeof" || candidate == "alignof") {
        continue;
      }
      // A candidate preceded by '.' or '->' is a member call in an
      // expression (e.g. a lambda argument: "queue_.schedule(t, [this]"),
      // not a definition head — the brace opens a block, not a function.
      const auto pos = static_cast<std::size_t>(it->position(1));
      if (pos > 0 && (head[pos - 1] == '.' || head[pos - 1] == '>')) {
        continue;
      }
      name = std::move(candidate);
      break;
    }
    if (!name.empty()) {
      // Member function defined inside its class body: qualify with the
      // innermost enclosing type so hot-function patterns match.
      for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        if (it->kind == ScopeKind::kType && !it->name.empty() &&
            name.find("::") == std::string::npos) {
          name = it->name + "::" + name;
          break;
        }
        if (it->kind == ScopeKind::kFunction) break;
      }
      return Scope{ScopeKind::kFunction, name};
    }
  }

  // Inside a function everything else is a plain block; at namespace or
  // class scope an unrecognized head ("= default" oddities, array
  // initializers) is treated as a block too — it nests transparently.
  return Scope{ScopeKind::kBlock, ""};
}

ScopeScanner::ScopeScanner(std::string_view code) : code_(code) {}

void ScopeScanner::run(const Callbacks& callbacks) {
  stack_.clear();
  int line = 1;
  int stmt_line = 1;
  std::string head;  // text since the last ';', '{' or '}'
  bool head_dirty = false;

  for (std::size_t i = 0; i < code_.size(); ++i) {
    const char c = code_[i];
    if (c == '\n') ++line;

    if (c == '{') {
      Scope scope = classify_head(head, stack_);
      stack_.push_back(std::move(scope));
      if (callbacks.on_scope_open) callbacks.on_scope_open(collapse(head), line);
      head.clear();
      head_dirty = false;
      stmt_line = line;
      continue;
    }
    if (c == '}') {
      if (!stack_.empty()) {
        Scope closed = std::move(stack_.back());
        stack_.pop_back();
        if (callbacks.on_scope_close) callbacks.on_scope_close(closed, line);
      }
      head.clear();
      head_dirty = false;
      stmt_line = line;
      continue;
    }
    if (c == ';') {
      if (head_dirty && callbacks.on_statement) {
        callbacks.on_statement(collapse(head), stmt_line);
      }
      head.clear();
      head_dirty = false;
      stmt_line = line;
      continue;
    }

    if (!head_dirty && !std::isspace(static_cast<unsigned char>(c))) {
      head_dirty = true;
      stmt_line = line;
    }
    head.push_back(c);
  }
}

std::string ScopeScanner::enclosing_function() const {
  for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
    if (it->kind == ScopeKind::kFunction) return it->name;
  }
  return "";
}

bool ScopeScanner::at_namespace_scope() const {
  for (const Scope& s : stack_) {
    if (s.kind != ScopeKind::kNamespace) return false;
  }
  return true;
}

std::string ScopeScanner::enclosing_type() const {
  for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
    if (it->kind == ScopeKind::kFunction) return "";
    if (it->kind == ScopeKind::kType) return it->name;
  }
  return "";
}

}  // namespace rbcast::analyze
