// rbcast_analyze rule engine.
//
// Whole-repo structural analysis that the per-line determinism lint
// (tools/lint/) and clang-tidy cannot express. Three passes over src/:
//
//   layer graph      extracts the quoted-include graph and enforces the
//                    declared layer DAG (util -> sim -> topo -> net ->
//                    core -> trace/model -> harness) plus explicit
//                    forbidden edges: src/core must not include sim/ or
//                    harness/ headers — the precondition for extracting
//                    BroadcastHost behind a Transport interface. Also
//                    detects include cycles and exports the graph as DOT.
//
//   state census     flags shared mutable state: non-const namespace-scope
//                    variables (mutable-global), non-const function-local
//                    statics (local-static), and Meyers singletons
//                    (singleton). This census is the worklist for the
//                    conservative-parallel-DES shard work: every hit must
//                    be fixed or carry a waiver explaining why it is safe.
//
//   hot-path allocs  flags allocation inside the declared hot-function set
//                    (EventQueue::*, Simulator::step, BroadcastHost::on_*,
//                    SeqSet::*): operator new, make_unique/make_shared,
//                    and growing-container calls (push_back, insert,
//                    resize, ...). The zero-alloc event path planned for
//                    the 10^5-host runs is only provable if this pass
//                    stays clean.
//
// A line can waive one rule with a trailing comment:
//   // analyze:allow(rule-name) reason
// Waivers are themselves counted and ratcheted (a regression in waiver
// count fails CI too — annotations are a tracked debt, not an escape
// hatch).
//
// The engine is pure (paths + contents in, findings out) so
// tests/analyze_engine_test.cpp can feed it synthetic file sets.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace rbcast::analyze {

struct Finding {
  std::string file;
  int line{0};
  std::string rule;
  std::string message;

  friend bool operator==(const Finding&, const Finding&) = default;
};

// A finding waived in source with "// analyze:allow(rule) reason".
struct Waiver {
  std::string file;
  int line{0};
  std::string rule;
  std::string reason;

  friend bool operator==(const Waiver&, const Waiver&) = default;
};

// One repo file handed to the engine. `path` is repo-relative with forward
// slashes ("src/core/broadcast_host.cpp").
struct FileInput {
  std::string path;
  std::string contents;
};

// --- layer model --------------------------------------------------------

// Declared layering of src/: a file in layer L may include headers only
// from layers with rank() <= rank(L), except that edges listed in
// `forbidden` are banned regardless of rank. Layer names are the first
// directory component under src/ ("core" for src/core/...).
struct LayerSpec {
  std::map<std::string, int> rank;
  // from-layer -> to-layer edges banned even when ranks would allow them.
  std::vector<std::pair<std::string, std::string>> forbidden;
  // from-layer -> to-layer edges allowed ONLY through the named headers
  // (resolved repo-relative paths), regardless of rank. This is how
  // "core may see the abstract Transport interface but never a backend"
  // is enforced by the gate instead of by convention.
  struct InterfaceEdge {
    std::string from;
    std::string to;
    std::set<std::string> headers;
  };
  std::vector<InterfaceEdge> interface_only;
};

// The repo's declared DAG (see DESIGN.md §11).
[[nodiscard]] LayerSpec default_layer_spec();

// The declared hot-function set: (class, method-pattern) pairs where the
// pattern is an exact method name, "*" (every method), or "prefix*".
struct HotSpec {
  std::vector<std::pair<std::string, std::string>> functions;
};

[[nodiscard]] HotSpec default_hot_spec();

// --- analysis -----------------------------------------------------------

struct AnalysisResult {
  std::vector<Finding> findings;   // ordered by (file, line)
  std::vector<Waiver> waivers;     // ordered by (file, line)
  // Quoted-include edges between repo files (both endpoints in the input
  // set), for DOT export and the layer pass.
  std::map<std::string, std::set<std::string>> include_graph;
};

[[nodiscard]] AnalysisResult analyze(const std::vector<FileInput>& files,
                                     const LayerSpec& layers,
                                     const HotSpec& hot);

// Graphviz rendering of the include graph, one cluster per layer.
[[nodiscard]] std::string to_dot(
    const std::map<std::string, std::set<std::string>>& graph);

// Full machine-readable report (findings, waivers, per-rule counts).
[[nodiscard]] std::string to_json(const AnalysisResult& result);

// --- ratchet ------------------------------------------------------------

// Per-rule finding and waiver counts — the unit the CI gate compares.
struct Ratchet {
  std::map<std::string, int> findings;
  std::map<std::string, int> waivers;

  friend bool operator==(const Ratchet&, const Ratchet&) = default;
};

[[nodiscard]] Ratchet count(const AnalysisResult& result);

[[nodiscard]] std::string ratchet_to_json(const Ratchet& r);

// Parses a committed baseline; nullopt on malformed input (the gate then
// fails closed).
[[nodiscard]] std::optional<Ratchet> ratchet_from_json(std::string_view json);

// Baseline-vs-current comparison. A rule present on only one side is
// treated as count 0 on the other (so brand-new rules start ratcheted at
// zero and fully fixed rules may disappear from the baseline).
struct RatchetDiff {
  bool regressed{false};  // any count rose — the gate must fail
  bool improved{false};   // any count fell — the baseline can shrink
  std::vector<std::string> lines;  // human-readable per-rule deltas
};

[[nodiscard]] RatchetDiff compare_ratchet(const Ratchet& baseline,
                                          const Ratchet& current);

}  // namespace rbcast::analyze
