// rbcast_lint rule engine.
//
// Repo-specific determinism rules that generic tools (clang-tidy, the
// sanitizers) cannot express. The protocol claims checked by
// src/model/checker.cpp and tests/claims_test.cpp are only falsifiable if a
// run is bit-for-bit reproducible from its seed, so the rules ban every
// source of hidden nondeterminism:
//
//   raw-random            rand()/srand()/time(NULL)/std::random_device/
//                         wall-clock reads anywhere in src/ except the
//                         seeded stream factory src/util/rng.*
//   unordered-container   std::unordered_map / std::unordered_set in the
//                         protocol layers (src/core, src/sim, src/net) —
//                         hash iteration order is not stable across
//                         libraries, ASLR or seeds
//   unordered-range-for   range-for over an identifier declared with an
//                         unordered container type, anywhere in src/
//   direct-output         std::cout / printf in the protocol layers; all
//                         diagnostics go through src/util/logging.h so the
//                         virtual clock is attached and tests stay silent
//   raw-assert            assert() / <cassert>; invariants use
//                         RBCAST_ASSERT (src/util/assert.h) so they fire in
//                         release builds too
//   pragma-once           every header under src/ carries #pragma once
//
// A line can opt out of one rule with a trailing comment:
//   // lint:allow(rule-name) reason
//
// The engine is pure (path + contents in, findings out) so
// tests/lint_rules_test.cpp can feed it known-good and known-bad snippets.
#pragma once

#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace rbcast::lint {

struct Finding {
  std::string file;
  int line{0};
  std::string rule;
  std::string message;

  friend bool operator==(const Finding&, const Finding&) = default;
};

// Replaces // and /* */ comments with spaces, preserving newlines so line
// numbers computed on the result match the original. String and character
// literals are also blanked (a "rand()" inside a string is not a call).
[[nodiscard]] std::string strip_comments(std::string_view source);

// Identifiers declared (or bound) with std::unordered_map /
// std::unordered_set type in `source`. Feeds the unordered-range-for rule.
[[nodiscard]] std::vector<std::string> unordered_identifiers(
    std::string_view source);

// Lints one file. `path` must be repo-relative ("src/core/foo.cpp") — the
// directory-scoped rules key off it. `unordered_ids` is the union of
// unordered-typed identifiers harvested from the whole tree.
[[nodiscard]] std::vector<Finding> lint_file(
    std::string_view path, std::string_view source,
    const std::set<std::string>& unordered_ids);

}  // namespace rbcast::lint
