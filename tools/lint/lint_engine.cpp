#include "lint/lint_engine.h"

#include <cctype>
#include <regex>

namespace rbcast::lint {

namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool in_protocol_layer(std::string_view path) {
  return starts_with(path, "src/core/") || starts_with(path, "src/sim/") ||
         starts_with(path, "src/net/");
}

bool is_rng_source(std::string_view path) {
  return path == "src/util/rng.h" || path == "src/util/rng.cpp";
}

bool is_header(std::string_view path) {
  return path.size() >= 2 && path.substr(path.size() - 2) == ".h";
}

std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.emplace_back(text.substr(start));
      break;
    }
    lines.emplace_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

// True when `orig_line` carries a "// lint:allow(rule)" waiver.
bool suppressed(const std::string& orig_line, std::string_view rule) {
  const std::string token = "lint:allow(" + std::string(rule) + ")";
  return orig_line.find(token) != std::string::npos;
}

const std::regex& raw_random_re() {
  static const std::regex re(
      R"(std::random_device)"
      R"(|\brand\s*\()"
      R"(|\bsrand\s*\()"
      R"(|\btime\s*\(\s*(NULL|nullptr|0)?\s*\))"
      R"(|\bclock\s*\(\s*\))"
      R"(|\bgettimeofday\s*\()"
      R"(|std::chrono::(system_clock|steady_clock|high_resolution_clock)::now)");
  return re;
}

const std::regex& unordered_container_re() {
  static const std::regex re(
      R"(std::unordered_(map|set)\b|#\s*include\s*<unordered_(map|set)>)");
  return re;
}

const std::regex& direct_output_re() {
  static const std::regex re(
      R"(std::cout\b|std::cerr\b|\bprintf\s*\(|\bfprintf\s*\(|\bputs\s*\()");
  return re;
}

const std::regex& raw_assert_re() {
  static const std::regex re(
      R"(\bassert\s*\(|#\s*include\s*<cassert>|#\s*include\s*<assert\.h>)");
  return re;
}

// Extracts the range expression of a range-based for on `line`
// ("for (decl : expr)"), or "" when the line has none. Good enough for the
// single-line loops this codebase writes; a loop split across lines is the
// clang-tidy gate's problem, not ours.
std::string range_for_expr(const std::string& line) {
  static const std::regex head(R"(\bfor\s*\()");
  std::smatch m;
  if (!std::regex_search(line, m, head)) return {};
  const std::size_t open = static_cast<std::size_t>(m.position(0)) +
                           m.str(0).size() - 1;
  int paren = 0;
  int angle = 0;
  int bracket = 0;
  std::size_t colon = std::string::npos;
  std::size_t close = std::string::npos;
  for (std::size_t i = open; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '(') ++paren;
    else if (c == ')') {
      --paren;
      if (paren == 0) {
        close = i;
        break;
      }
    } else if (c == '<') ++angle;
    else if (c == '>') angle = angle > 0 ? angle - 1 : 0;
    else if (c == '[') ++bracket;
    else if (c == ']') --bracket;
    else if (c == ':' && paren == 1 && angle == 0 && bracket == 0 &&
             colon == std::string::npos) {
      // Skip scope resolution '::'.
      const bool scope = (i + 1 < line.size() && line[i + 1] == ':') ||
                         (i > 0 && line[i - 1] == ':');
      if (!scope) colon = i;
    }
  }
  if (colon == std::string::npos || close == std::string::npos) return {};
  std::string expr = line.substr(colon + 1, close - colon - 1);
  const auto first = expr.find_first_not_of(" \t");
  const auto last = expr.find_last_not_of(" \t");
  if (first == std::string::npos) return {};
  return expr.substr(first, last - first + 1);
}

void add(std::vector<Finding>& out, std::string_view path, int line,
         std::string rule, std::string message) {
  out.push_back(Finding{std::string(path), line, std::move(rule),
                        std::move(message)});
}

}  // namespace

namespace {

// True when the '"' at `quote` opens a raw string literal: it is preceded
// by R with an optional encoding prefix (u8R", uR", UR", LR") that is not
// just the tail of a longer identifier (FooR"..." is not raw).
bool is_raw_string_open(std::string_view source, std::size_t quote) {
  if (quote == 0 || source[quote - 1] != 'R') return false;
  std::size_t p = quote - 1;  // index of 'R'
  if (p >= 2 && source[p - 2] == 'u' && source[p - 1] == '8') {
    p -= 2;
  } else if (p >= 1 && (source[p - 1] == 'u' || source[p - 1] == 'U' ||
                        source[p - 1] == 'L')) {
    p -= 1;
  }
  if (p == 0) return true;
  const char before = source[p - 1];
  return !(std::isalnum(static_cast<unsigned char>(before)) ||
           before == '_');
}

}  // namespace

std::string strip_comments(std::string_view source) {
  std::string out(source);
  enum class State { kCode, kLine, kBlock, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = ' ';
        } else if (c == '"' && is_raw_string_open(source, i)) {
          // Raw string literal R"delim(...)delim": no escapes apply, so
          // scan for the exact close sequence and blank the payload
          // (newlines preserved). Unterminated raw strings blank to EOF.
          std::size_t d = i + 1;
          while (d < out.size() && out[d] != '(') ++d;
          const std::string close =
              ")" + std::string(source.substr(i + 1, d - (i + 1))) + "\"";
          const std::size_t end = source.find(close, d);
          const std::size_t stop =
              end == std::string_view::npos ? out.size()
                                            : end + close.size();
          for (std::size_t j = i + 1; j < stop; ++j) {
            if (out[j] != '\n') out[j] = ' ';
          }
          i = stop - 1;  // resume after the closing quote
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          // A ' between alphanumerics is a digit separator (1'000'000),
          // not a character literal.
          const bool separator =
              i > 0 &&
              std::isalnum(static_cast<unsigned char>(out[i - 1])) &&
              std::isalnum(static_cast<unsigned char>(next));
          if (!separator) state = State::kChar;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          // A backslash immediately before the newline splices the next
          // line into this comment (phase-2 line continuation).
          const bool spliced =
              (i >= 1 && source[i - 1] == '\\') ||
              (i >= 2 && source[i - 1] == '\r' && source[i - 2] == '\\');
          if (!spliced) state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          if (i + 1 < out.size() && next != '\n') out[i + 1] = ' ';
          out[i] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          if (i + 1 < out.size() && next != '\n') out[i + 1] = ' ';
          out[i] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> unordered_identifiers(std::string_view source) {
  const std::string code = strip_comments(source);
  std::vector<std::string> ids;
  static const std::regex decl(R"(std::unordered_(map|set)\s*<)");
  auto begin = std::sregex_iterator(code.begin(), code.end(), decl);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    // Walk past the balanced template argument list.
    std::size_t i = static_cast<std::size_t>(it->position(0)) +
                    it->str(0).size();
    int depth = 1;
    while (i < code.size() && depth > 0) {
      if (code[i] == '<') ++depth;
      else if (code[i] == '>') --depth;
      ++i;
    }
    if (depth != 0) continue;
    while (i < code.size() &&
           (std::isspace(static_cast<unsigned char>(code[i])) ||
            code[i] == '&' || code[i] == '*')) {
      ++i;
    }
    if (i < code.size() && code[i] == ':') continue;  // ::iterator etc.
    std::string name;
    while (i < code.size() &&
           (std::isalnum(static_cast<unsigned char>(code[i])) ||
            code[i] == '_')) {
      name.push_back(code[i]);
      ++i;
    }
    if (!name.empty() &&
        !std::isdigit(static_cast<unsigned char>(name.front()))) {
      ids.push_back(std::move(name));
    }
  }
  return ids;
}

std::vector<Finding> lint_file(std::string_view path, std::string_view source,
                               const std::set<std::string>& unordered_ids) {
  std::vector<Finding> findings;
  if (!starts_with(path, "src/")) return findings;

  const std::string code = strip_comments(source);
  const std::vector<std::string> orig_lines = split_lines(source);
  const std::vector<std::string> code_lines = split_lines(code);

  const bool protocol = in_protocol_layer(path);
  const bool rng_ok = is_rng_source(path);

  for (std::size_t n = 0; n < code_lines.size(); ++n) {
    const std::string& line = code_lines[n];
    const std::string& orig = orig_lines[n];
    const int lineno = static_cast<int>(n) + 1;

    if (!rng_ok && std::regex_search(line, raw_random_re()) &&
        !suppressed(orig, "raw-random")) {
      add(findings, path, lineno, "raw-random",
          "nondeterministic randomness/time source; draw from a named "
          "util::RngFactory stream (src/util/rng.h) so runs replay from "
          "their seed");
    }
    if (protocol && std::regex_search(line, unordered_container_re()) &&
        !suppressed(orig, "unordered-container")) {
      add(findings, path, lineno, "unordered-container",
          "unordered containers iterate in hash order, which varies across "
          "standard libraries and runs; use std::map/std::set or keep a "
          "sorted snapshot");
    }
    if (!unordered_ids.empty()) {
      const std::string expr = range_for_expr(line);
      if (!expr.empty() && unordered_ids.contains(expr) &&
          !suppressed(orig, "unordered-range-for")) {
        add(findings, path, lineno, "unordered-range-for",
            "range-for over unordered container '" + expr +
                "' is seed-irreproducible; iterate a sorted snapshot");
      }
    }
    if (protocol && std::regex_search(line, direct_output_re()) &&
        !suppressed(orig, "direct-output")) {
      add(findings, path, lineno, "direct-output",
          "direct stdout/stderr output in protocol code; use "
          "RBCAST_LOG/RBCAST_INFO (src/util/logging.h) so records carry "
          "virtual time and tests stay silent");
    }
    if (std::regex_search(line, raw_assert_re()) &&
        !suppressed(orig, "raw-assert")) {
      add(findings, path, lineno, "raw-assert",
          "raw assert() compiles out under NDEBUG; use RBCAST_ASSERT "
          "(src/util/assert.h) so invariants hold in release builds");
    }
  }

  if (is_header(path) &&
      source.find("#pragma once") == std::string_view::npos) {
    add(findings, path, 1, "pragma-once", "header is missing #pragma once");
  }
  return findings;
}

}  // namespace rbcast::lint
