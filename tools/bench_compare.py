#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and fail on regressions.

Usage:
    bench_compare.py BASELINE.json CURRENT.json [--threshold 2.0]
                     [--min-time-ns 50]

Compares per-iteration real_time of every benchmark present in both files
(after normalizing time units). Exits 1 if any benchmark regressed by more
than --threshold x, or if a baseline benchmark disappeared (renaming a
benchmark without updating the committed baseline would otherwise silently
drop it from the gate).

Benchmarks faster than --min-time-ns in the baseline are reported but never
fail the gate: at a few tens of nanoseconds per iteration, scheduler noise
on shared CI runners swamps any real signal.

The committed baseline (BENCH_micro.json at the repo root) is regenerated
with:
    ./build/bench/bench_micro --benchmark_format=json > BENCH_micro.json
"""

import argparse
import json
import sys

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_benchmarks(path):
    """Returns {name: real_time_ns} for every non-aggregate benchmark."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue  # skip aggregate rows (mean/median/stddev)
        unit = _UNIT_NS.get(b.get("time_unit", "ns"))
        if unit is None:
            raise ValueError(f"{path}: unknown time_unit in {b['name']!r}")
        out[b["name"]] = float(b["real_time"]) * unit
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=2.0,
                    help="max allowed current/baseline ratio (default 2.0)")
    ap.add_argument("--min-time-ns", type=float, default=50.0,
                    help="baseline times below this only warn, never fail")
    args = ap.parse_args()

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)

    if not baseline:
        print(f"error: {args.baseline} contains no benchmarks",
              file=sys.stderr)
        return 1
    if not current:
        print(f"error: {args.current} contains no benchmarks",
              file=sys.stderr)
        return 1
    if not set(baseline) & set(current):
        # Completely disjoint name sets almost always mean the candidate
        # came from a different bench binary (or a wholesale rename); a
        # plain per-name "missing" report would bury that.
        print(f"error: {args.baseline} and {args.current} share no "
              f"benchmark names ({len(baseline)} baseline vs "
              f"{len(current)} current) — comparing output of different "
              f"bench binaries? If every benchmark was renamed, "
              f"regenerate the committed baseline.", file=sys.stderr)
        return 1

    missing = sorted(set(baseline) - set(current))
    new = sorted(set(current) - set(baseline))
    failures = []

    width = max((len(n) for n in baseline), default=10)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  ratio")
    for name in sorted(set(baseline) & set(current)):
        base_ns, cur_ns = baseline[name], current[name]
        ratio = cur_ns / base_ns if base_ns > 0 else float("inf")
        verdict = ""
        if ratio > args.threshold:
            if base_ns < args.min_time_ns:
                verdict = "  (noisy: below min-time floor, not gating)"
            else:
                verdict = "  REGRESSION"
                failures.append((name, ratio))
        print(f"{name:<{width}}  {base_ns:>10.1f}ns  {cur_ns:>10.1f}ns  "
              f"{ratio:5.2f}x{verdict}")

    for name in new:
        print(f"note: new benchmark (no baseline): {name}")

    ok = True
    if missing:
        ok = False
        for name in missing:
            print(f"error: baseline benchmark missing from current run: "
                  f"{name}", file=sys.stderr)
        print("(renamed or removed a benchmark? regenerate BENCH_micro.json)",
              file=sys.stderr)
    if failures:
        ok = False
        for name, ratio in failures:
            print(f"error: {name} regressed {ratio:.2f}x "
                  f"(threshold {args.threshold}x)", file=sys.stderr)
    if ok:
        print(f"OK: {len(set(baseline) & set(current))} benchmarks within "
              f"{args.threshold}x of baseline")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
