// Multiple-source broadcast (Section 2): two database sites generate
// updates concurrently, each running its own single-source protocol
// instance; every host subscribes to both streams over one network
// endpoint.
//
// Demonstrates core::MultiSourceNode: per-stream parent graphs (each
// rooted at its own source), interleaved delivery, and per-stream
// exactly-once — all over a WAN with a mid-run trunk outage.
//
//   $ ./multi_source
#include <iostream>
#include <map>
#include <sstream>
#include <memory>
#include <vector>

#include "rbcast.h"

using namespace rbcast;

int main() {
  // Two clusters; one update source in each (hosts 0 and 3).
  topo::ClusteredWanOptions wan_options;
  wan_options.clusters = 2;
  wan_options.hosts_per_cluster = 3;
  const topo::Wan wan = make_clustered_wan(wan_options);
  const std::vector<HostId> sources{HostId{0}, HostId{3}};

  sim::Simulator simulator;
  util::RngFactory rngs(7);
  net::Network network(simulator, wan.topology, net::NetConfig{}, rngs);
  net::FaultPlan faults(simulator, network);

  const auto all = wan.topology.host_ids();
  std::vector<std::unique_ptr<core::MultiSourceNode>> nodes;
  // delivered[host][source] = how many updates of that stream arrived
  std::vector<std::map<HostId, int>> delivered(all.size());

  for (HostId h : all) {
    const auto idx = static_cast<std::size_t>(h.value);
    nodes.push_back(std::make_unique<core::MultiSourceNode>(
        simulator, network.endpoint(h), sources, all, core::Config{}, rngs,
        [&delivered, idx](HostId source, util::Seq, std::string_view) {
          ++delivered[idx][source];
        }));
    network.register_host(h, [&nodes, idx](const net::Delivery& d) {
      nodes[idx]->on_delivery(d);
    });
  }
  for (auto& node : nodes) node->start();

  // Both sites publish an update every second, interleaved; the trunk
  // between the clusters fails from t=20 to t=40.
  for (int k = 0; k < 60; ++k) {
    simulator.at(sim::seconds(1 + k), [&nodes, k] {
      nodes[0]->broadcast("site-A update " + std::to_string(k));
      nodes[3]->broadcast("site-B update " + std::to_string(k));
    });
  }
  faults.outage_window(wan.trunks[0], sim::seconds(20), sim::seconds(40));

  simulator.run_until(sim::seconds(180));

  util::Table table({"host", "stream A (h0)", "stream B (h3)",
                     "parent in A", "parent in B"});
  bool complete = true;
  for (HostId h : all) {
    const auto idx = static_cast<std::size_t>(h.value);
    const int a = delivered[idx][HostId{0}];
    const int b = delivered[idx][HostId{3}];
    complete &= (a == 60 && b == 60);
    std::ostringstream pa;
    std::ostringstream pb;
    pa << nodes[idx]->instance(HostId{0}).parent();
    pb << nodes[idx]->instance(HostId{3}).parent();
    table.row()
        .cell("h" + std::to_string(h.value))
        .cell(static_cast<std::int64_t>(a))
        .cell(static_cast<std::int64_t>(b))
        .cell(pa.str())
        .cell(pb.str());
  }
  table.print(std::cout);
  std::cout << "\nboth 60-update streams complete at every host, despite "
               "the 20 s trunk outage: "
            << (complete ? "YES" : "NO") << "\n"
            << "(note the two parent columns: each stream maintains its own "
               "tree,\n rooted at its own source)\n";
  return complete ? 0 : 1;
}
