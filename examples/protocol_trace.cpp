// Protocol trace: watch the algorithm work, message by message.
//
// Runs the exact Figure 4.1 scenario at debug log level on a three-host
// triangle and prints an annotated timeline: tree formation, the
// engineered losses, the source getting cut off, and non-neighbor gap
// filling completing the stream. Useful for understanding the protocol
// and as a template for instrumenting your own scenarios.
//
// Also writes the whole run as a structured JSONL trace
// (protocol_trace.jsonl) — inspect it afterwards with
//   $ rbcast_trace --lineage 2 protocol_trace.jsonl
// to see message 2's loss on the s-i trunk and its eventual non-neighbor
// gap fill from j.
//
//   $ ./protocol_trace 2>trace.log   # timeline on stdout, raw log on stderr
#include <fstream>
#include <iostream>

#include "rbcast.h"

using namespace rbcast;

namespace {

void snapshot(harness::Experiment& e, const topo::Figure41& fig,
              const char* moment) {
  std::cout << "--- " << moment << " (t="
            << sim::to_seconds(e.simulator().now()) << "s)\n";
  for (HostId h : {fig.s, fig.i, fig.j}) {
    const auto& host = e.host(h);
    std::cout << "    " << h << "  parent=";
    if (host.parent().valid()) {
      std::cout << host.parent();
    } else {
      std::cout << "(root)";
    }
    std::cout << "  INFO=" << host.info().to_string() << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  util::Logger::instance().set_level(util::LogLevel::kInfo);

  const auto fig = topo::make_figure_4_1();
  harness::ScenarioOptions options;
  options.seed = 10;
  options.protocol.parent_timeout = sim::seconds(100000);
  options.protocol.gapfill_period_far = sim::seconds(2);
  options.protocol.data_bytes = 64;
  harness::Experiment e(fig.topology, options);
  auto& net = e.network();

  // Stream the full run (protocol + network events, metric samples every
  // simulated second) into a JSONL trace for offline analysis.
  std::ofstream trace_file("protocol_trace.jsonl");
  trace::JsonlSink trace_sink(trace_file);
  e.set_trace_sink(&trace_sink);
  e.enable_metric_sampling(sim::seconds(1));

  std::cout << "Figure 4.1: three single-host clusters s, i, j on an "
               "expensive triangle\n"
            << trace::manifest_line(e.manifest()) << "\n\n";

  e.start();
  e.broadcast();
  e.run_for(sim::seconds(15));
  snapshot(e, fig, "after warm-up: i and j attached to s, message 1 "
                   "everywhere");

  // Engineered losses (see DESIGN.md, experiment E10).
  net.set_link_up(fig.trunk_si, false);
  e.run_for(sim::milliseconds(1));
  e.broadcast();
  e.run_for(sim::milliseconds(59));
  net.set_link_up(fig.trunk_si, true);
  net.set_link_up(fig.trunk_sj, false);
  e.run_for(sim::milliseconds(1));
  e.broadcast();
  e.run_for(sim::milliseconds(59));
  net.set_link_up(fig.trunk_sj, true);
  e.run_for(sim::milliseconds(1));
  e.broadcast();
  e.run_for(sim::milliseconds(60));
  snapshot(e, fig, "messages 2-4 sent with engineered losses: i missed 2, "
                   "j missed 3");

  net.set_link_up(e.topology().host(fig.s).access_link, false);
  std::cout << "*** source s is now cut off from the network ***\n\n";

  e.run_for(sim::seconds(30));
  snapshot(e, fig, "after 30s of non-neighbor gap filling between i and j");

  const bool complete =
      e.host(fig.i).info().count() == 4 && e.host(fig.j).info().count() == 4;
  std::cout << "i and j completed each other's gaps without the source: "
            << (complete ? "YES" : "NO") << "\n";

  std::cout << "\n=== protocol event timeline ===\n";
  e.events().dump(std::cout, /*include_deliveries=*/true);

  std::cout << "\n=== final host parent graph (Graphviz) ===\n"
            << trace::parent_graph_dot(e.host_views(), e.network(),
                                       e.source());

  e.sampler()->sample_now();
  trace_sink.close();
  std::cout << "\nwrote protocol_trace.jsonl — try: rbcast_trace "
               "--lineage 2 protocol_trace.jsonl\n";
  return complete ? 0 : 1;
}
