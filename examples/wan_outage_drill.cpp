// Operations drill: a five-campus WAN survives a rolling series of faults
// while a broadcast stream is live.
//
// Shows the harness-level API and the convergence probes: a star WAN of
// five clusters streams updates while trunks flap, one trunk dies for a
// full minute, and a host crashes and comes back. After every phase the
// drill prints where the host parent graph stands; at the end it verifies
// eventual exactly-once delivery of the entire stream.
//
//   $ ./wan_outage_drill
#include <iostream>

#include "rbcast.h"

using namespace rbcast;

namespace {

void report(harness::Experiment& e, const char* phase) {
  const auto r = e.convergence();
  std::size_t delivered_everywhere = 0;
  for (util::Seq q = 1; q <= e.last_seq(); ++q) {
    if (e.metrics().delivered_count(q) == e.host_count()) {
      ++delivered_everywhere;
    }
  }
  std::cout << "[t=" << sim::to_seconds(e.simulator().now()) << "s] " << phase
            << "\n  tree rooted at source: "
            << (r.tree_rooted_at_source ? "yes" : "no")
            << " | induces cluster tree: "
            << (r.induces_cluster_tree ? "yes" : "no")
            << " | leaders: " << r.leader_count << "\n  messages so far: "
            << e.last_seq() << ", complete everywhere: "
            << delivered_everywhere << "\n";
  if (!r.detail.empty()) std::cout << "  detail: " << r.detail << "\n";
  std::cout << "\n";
}

}  // namespace

int main() {
  topo::ClusteredWanOptions wan_options;
  wan_options.clusters = 5;
  wan_options.hosts_per_cluster = 2;
  wan_options.shape = topo::TrunkShape::kStar;
  wan_options.extra_trunk_fraction = 0.4;  // some path diversity
  const topo::Wan wan = make_clustered_wan(wan_options);
  std::cout << "network: " << wan.topology.describe() << "\n\n";

  harness::ScenarioOptions options;
  options.seed = 7;
  options.protocol.attach_ack_timeout = sim::seconds(2);
  harness::Experiment e(wan.topology, options);

  // The fault schedule, staged up front.
  // 1) trunk 1 flaps for the first two minutes;
  e.faults().flapping({wan.trunks[1]}, sim::seconds(15), sim::seconds(5),
                      sim::seconds(120), e.rngs());
  // 2) trunk 2 is hard down from t=60 to t=120;
  e.faults().outage_window(wan.trunks[2], sim::seconds(60),
                           sim::seconds(120));
  // 3) host 5 crashes from t=90 to t=150 (its access link fails).
  e.faults().host_crash_window(HostId{5}, sim::seconds(90),
                               sim::seconds(150));

  e.start();
  // Live stream: one update per second for three minutes.
  e.broadcast_stream(180, sim::seconds(1), sim::seconds(1));

  e.run_until(sim::seconds(30));
  report(e, "warm-up complete, trunk 1 flapping");

  e.run_until(sim::seconds(90));
  report(e, "trunk 2 down for 30s, host 5 just crashed");

  e.run_until(sim::seconds(150));
  report(e, "all faults over, host 5 rebooted");

  const sim::TimePoint done = e.run_until_delivered(sim::seconds(600));
  report(e, "stream drained");

  bool exactly_once = true;
  for (HostId h : e.topology().host_ids()) {
    exactly_once &= e.host(h).counters().deliveries == e.last_seq();
  }
  std::cout << "verdict: all " << e.last_seq() << " messages at all "
            << e.host_count() << " hosts by t=" << sim::to_seconds(done)
            << "s, exactly once: " << (exactly_once ? "YES" : "NO") << "\n";
  return exactly_once && e.all_delivered() ? 0 : 1;
}
