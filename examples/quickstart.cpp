// Quickstart: reliable broadcast over a small WAN in ~40 lines of client
// code.
//
// Builds two clusters of three hosts joined by an expensive trunk, runs
// the paper's protocol, broadcasts ten messages from host 0 and shows that
// every host received all of them exactly once, plus the host parent graph
// the attachment procedure settled on.
//
//   $ ./quickstart
#include <iostream>
#include <sstream>

#include "rbcast.h"

using namespace rbcast;

int main() {
  // 1. A topology: 2 clusters x 3 hosts, cheap LANs inside, one expensive
  //    long-haul trunk between them.
  topo::ClusteredWanOptions wan;
  wan.clusters = 2;
  wan.hosts_per_cluster = 3;
  const topo::Wan built = make_clustered_wan(wan);
  std::cout << "network: " << built.topology.describe() << "\n\n";

  // 2. An experiment: simulator + network + one protocol host per host.
  //    Host 0 is the broadcast source.
  harness::ScenarioOptions options;
  options.source = HostId{0};
  options.seed = 42;
  harness::Experiment experiment(built.topology, options);
  experiment.start();

  // 3. Broadcast a stream of ten messages, half a second apart.
  experiment.broadcast_stream(10, sim::milliseconds(500), sim::seconds(1));

  // 4. Run virtual time until every host holds every message, then give
  //    the attachment procedure a moment to consolidate cluster leaders.
  const sim::TimePoint done =
      experiment.run_until_delivered(sim::seconds(120));
  std::cout << "stream of 10 messages complete everywhere at t = "
            << sim::to_seconds(done) << " s\n\n";
  experiment.run_for(sim::seconds(30));

  // 5. Inspect the result.
  util::Table table({"host", "parent", "INFO set", "delivered"});
  for (HostId h : experiment.topology().host_ids()) {
    const auto& host = experiment.host(h);
    std::ostringstream hs;
    std::ostringstream ps;
    hs << h;
    ps << host.parent();
    table.row()
        .cell(hs.str())
        .cell(ps.str())
        .cell(host.info().to_string())
        .cell(host.counters().deliveries);
  }
  table.print(std::cout);

  const auto report = experiment.convergence();
  std::cout << "\nparent graph is a tree rooted at the source: "
            << (report.tree_rooted_at_source ? "yes" : "no")
            << "\ninduces the cluster tree (one leader per cluster): "
            << (report.induces_cluster_tree ? "yes" : "no") << "\n";

  // Cost check, Section 5: broadcast across k=2 clusters needs k-1 = 1
  // inter-cluster transmission per message.
  std::cout << "inter-cluster data transmissions for 10+1 messages: "
            << experiment.metrics().intercluster_data_sends() << "\n";
  return 0;
}
