// Replicated database update propagation — the application that motivated
// the paper (Section 1): "management of highly available replicated
// databases ... it is not absolutely essential that updates be installed
// in remote copies of the database always in the correct order."
//
// Every host keeps a replica of a small account database. The source
// broadcasts commutative updates ("account += delta"); replicas apply them
// in whatever order they arrive (the protocol deliberately does not
// enforce ordering — that is its latency advantage). Mid-stream, a
// partition cuts two clusters off; gap filling repairs them after the
// partition heals. At the end, every replica must agree exactly.
//
// This example wires the protocol layer by hand (no harness) to show the
// full public API: Network, HostEndpoint, BroadcastHost, FaultPlan.
//
//   $ ./replicated_db
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include "rbcast.h"

using namespace rbcast;

namespace {

// One replica: account -> balance, applied commutatively.
struct Replica {
  std::map<std::string, std::int64_t> accounts;
  int updates_applied = 0;
  int out_of_order = 0;  // how many arrived below the highest seq seen
  util::Seq highest_seen = 0;

  void apply(util::Seq seq, std::string_view body) {
    const auto colon = body.find(':');
    accounts[std::string(body.substr(0, colon))] +=
        std::stoll(std::string(body.substr(colon + 1)));
    ++updates_applied;
    if (seq < highest_seen) ++out_of_order;
    highest_seen = std::max(highest_seen, seq);
  }

  [[nodiscard]] std::string fingerprint() const {
    std::ostringstream os;
    for (const auto& [account, balance] : accounts) {
      os << account << '=' << balance << ';';
    }
    return os.str();
  }
};

}  // namespace

int main() {
  // Three bank branches (clusters), three hosts each, on a WAN ring.
  topo::ClusteredWanOptions wan_options;
  wan_options.clusters = 3;
  wan_options.hosts_per_cluster = 3;
  wan_options.shape = topo::TrunkShape::kRing;
  const topo::Wan wan = make_clustered_wan(wan_options);

  sim::Simulator simulator;
  util::RngFactory rngs(2026);
  net::Network network(simulator, wan.topology, net::NetConfig{}, rngs);
  net::FaultPlan faults(simulator, network);

  const auto all_hosts = wan.topology.host_ids();
  const HostId source{0};

  std::vector<Replica> replicas(all_hosts.size());
  std::vector<std::unique_ptr<core::BroadcastHost>> hosts;
  for (HostId h : all_hosts) {
    auto* replica = &replicas[static_cast<std::size_t>(h.value)];
    hosts.push_back(std::make_unique<core::BroadcastHost>(
        simulator, network.endpoint(h), source, all_hosts, core::Config{},
        rngs.stream("jitter", h.value),
        [replica](util::Seq seq, std::string_view body) {
          replica->apply(seq, body);
        }));
    network.register_host(h, [&hosts, h](const net::Delivery& d) {
      hosts[static_cast<std::size_t>(h.value)]->on_delivery(d);
    });
  }
  for (auto& host : hosts) host->start();

  // Workload: 60 updates over 60 s, round-robin across accounts.
  const char* accounts[] = {"alice", "bob", "carol"};
  util::Rng workload = rngs.stream("workload");
  for (int k = 0; k < 60; ++k) {
    simulator.at(sim::seconds(1 + k), [&, k] {
      std::ostringstream body;
      body << accounts[k % 3] << ":+" << workload.uniform_int(1, 100);
      hosts[0]->broadcast(body.str());
    });
  }

  // Fault: 25 s into the run, the two trunks around cluster 0 fail for
  // 20 s, cutting the source's cluster off mid-stream.
  faults.partition_window(
      net::FaultPlan::trunks_incident_to(wan.topology,
                                         wan.cluster_head_server[0]),
      sim::seconds(25), sim::seconds(45));

  simulator.run_until(sim::seconds(50));
  std::cout << "t=50s (5 s after the partition healed):\n";
  std::size_t caught_up = 0;
  for (const auto& host : hosts) {
    if (host->info().count() == hosts[0]->info().count()) ++caught_up;
  }
  std::cout << "  replicas already caught up: " << caught_up << "/"
            << hosts.size() << " (gap filling still running)\n\n";

  // Let the protocol finish repairing, then audit the replicas.
  simulator.run_until(sim::seconds(180));

  util::Table table({"host", "updates", "out-of-order", "fingerprint"});
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    table.row()
        .cell("h" + std::to_string(i))
        .cell(static_cast<std::int64_t>(replicas[i].updates_applied))
        .cell(static_cast<std::int64_t>(replicas[i].out_of_order))
        .cell(replicas[i].fingerprint());
  }
  table.print(std::cout);

  bool consistent = true;
  for (const auto& replica : replicas) {
    consistent &= replica.fingerprint() == replicas[0].fingerprint();
    consistent &= replica.updates_applied == 60;
  }
  std::cout << "\nall replicas consistent after partition + repair: "
            << (consistent ? "YES" : "NO") << "\n"
            << "(out-of-order applications are expected and harmless: the "
               "updates commute)\n";
  return consistent ? 0 : 1;
}
