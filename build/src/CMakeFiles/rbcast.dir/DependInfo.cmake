
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/attachment.cpp" "src/CMakeFiles/rbcast.dir/core/attachment.cpp.o" "gcc" "src/CMakeFiles/rbcast.dir/core/attachment.cpp.o.d"
  "/root/repo/src/core/basic_protocol.cpp" "src/CMakeFiles/rbcast.dir/core/basic_protocol.cpp.o" "gcc" "src/CMakeFiles/rbcast.dir/core/basic_protocol.cpp.o.d"
  "/root/repo/src/core/broadcast_host.cpp" "src/CMakeFiles/rbcast.dir/core/broadcast_host.cpp.o" "gcc" "src/CMakeFiles/rbcast.dir/core/broadcast_host.cpp.o.d"
  "/root/repo/src/core/gap_filling.cpp" "src/CMakeFiles/rbcast.dir/core/gap_filling.cpp.o" "gcc" "src/CMakeFiles/rbcast.dir/core/gap_filling.cpp.o.d"
  "/root/repo/src/core/gossip_protocol.cpp" "src/CMakeFiles/rbcast.dir/core/gossip_protocol.cpp.o" "gcc" "src/CMakeFiles/rbcast.dir/core/gossip_protocol.cpp.o.d"
  "/root/repo/src/core/host_state.cpp" "src/CMakeFiles/rbcast.dir/core/host_state.cpp.o" "gcc" "src/CMakeFiles/rbcast.dir/core/host_state.cpp.o.d"
  "/root/repo/src/core/messages.cpp" "src/CMakeFiles/rbcast.dir/core/messages.cpp.o" "gcc" "src/CMakeFiles/rbcast.dir/core/messages.cpp.o.d"
  "/root/repo/src/core/multi_source.cpp" "src/CMakeFiles/rbcast.dir/core/multi_source.cpp.o" "gcc" "src/CMakeFiles/rbcast.dir/core/multi_source.cpp.o.d"
  "/root/repo/src/core/ordered_delivery.cpp" "src/CMakeFiles/rbcast.dir/core/ordered_delivery.cpp.o" "gcc" "src/CMakeFiles/rbcast.dir/core/ordered_delivery.cpp.o.d"
  "/root/repo/src/harness/experiment.cpp" "src/CMakeFiles/rbcast.dir/harness/experiment.cpp.o" "gcc" "src/CMakeFiles/rbcast.dir/harness/experiment.cpp.o.d"
  "/root/repo/src/harness/workload.cpp" "src/CMakeFiles/rbcast.dir/harness/workload.cpp.o" "gcc" "src/CMakeFiles/rbcast.dir/harness/workload.cpp.o.d"
  "/root/repo/src/model/checker.cpp" "src/CMakeFiles/rbcast.dir/model/checker.cpp.o" "gcc" "src/CMakeFiles/rbcast.dir/model/checker.cpp.o.d"
  "/root/repo/src/model/model_node.cpp" "src/CMakeFiles/rbcast.dir/model/model_node.cpp.o" "gcc" "src/CMakeFiles/rbcast.dir/model/model_node.cpp.o.d"
  "/root/repo/src/net/fault_plan.cpp" "src/CMakeFiles/rbcast.dir/net/fault_plan.cpp.o" "gcc" "src/CMakeFiles/rbcast.dir/net/fault_plan.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/CMakeFiles/rbcast.dir/net/link.cpp.o" "gcc" "src/CMakeFiles/rbcast.dir/net/link.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/rbcast.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/rbcast.dir/net/network.cpp.o.d"
  "/root/repo/src/net/routing.cpp" "src/CMakeFiles/rbcast.dir/net/routing.cpp.o" "gcc" "src/CMakeFiles/rbcast.dir/net/routing.cpp.o.d"
  "/root/repo/src/net/server.cpp" "src/CMakeFiles/rbcast.dir/net/server.cpp.o" "gcc" "src/CMakeFiles/rbcast.dir/net/server.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/rbcast.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/rbcast.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/rbcast.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/rbcast.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/topo/generators.cpp" "src/CMakeFiles/rbcast.dir/topo/generators.cpp.o" "gcc" "src/CMakeFiles/rbcast.dir/topo/generators.cpp.o.d"
  "/root/repo/src/topo/topology.cpp" "src/CMakeFiles/rbcast.dir/topo/topology.cpp.o" "gcc" "src/CMakeFiles/rbcast.dir/topo/topology.cpp.o.d"
  "/root/repo/src/trace/convergence.cpp" "src/CMakeFiles/rbcast.dir/trace/convergence.cpp.o" "gcc" "src/CMakeFiles/rbcast.dir/trace/convergence.cpp.o.d"
  "/root/repo/src/trace/dot_export.cpp" "src/CMakeFiles/rbcast.dir/trace/dot_export.cpp.o" "gcc" "src/CMakeFiles/rbcast.dir/trace/dot_export.cpp.o.d"
  "/root/repo/src/trace/event_log.cpp" "src/CMakeFiles/rbcast.dir/trace/event_log.cpp.o" "gcc" "src/CMakeFiles/rbcast.dir/trace/event_log.cpp.o.d"
  "/root/repo/src/trace/metrics.cpp" "src/CMakeFiles/rbcast.dir/trace/metrics.cpp.o" "gcc" "src/CMakeFiles/rbcast.dir/trace/metrics.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/rbcast.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/rbcast.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/rbcast.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/rbcast.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/seq_set.cpp" "src/CMakeFiles/rbcast.dir/util/seq_set.cpp.o" "gcc" "src/CMakeFiles/rbcast.dir/util/seq_set.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/rbcast.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/rbcast.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/rbcast.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/rbcast.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
