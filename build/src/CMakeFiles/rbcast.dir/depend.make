# Empty dependencies file for rbcast.
# This may be replaced when dependencies are built.
