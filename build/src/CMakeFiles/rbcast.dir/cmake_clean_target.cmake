file(REMOVE_RECURSE
  "librbcast.a"
)
