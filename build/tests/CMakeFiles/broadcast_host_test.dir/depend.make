# Empty dependencies file for broadcast_host_test.
# This may be replaced when dependencies are built.
