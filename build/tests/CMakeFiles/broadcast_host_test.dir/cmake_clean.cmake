file(REMOVE_RECURSE
  "CMakeFiles/broadcast_host_test.dir/broadcast_host_test.cpp.o"
  "CMakeFiles/broadcast_host_test.dir/broadcast_host_test.cpp.o.d"
  "broadcast_host_test"
  "broadcast_host_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broadcast_host_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
