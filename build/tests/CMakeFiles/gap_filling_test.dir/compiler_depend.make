# Empty compiler generated dependencies file for gap_filling_test.
# This may be replaced when dependencies are built.
