file(REMOVE_RECURSE
  "CMakeFiles/gap_filling_test.dir/gap_filling_test.cpp.o"
  "CMakeFiles/gap_filling_test.dir/gap_filling_test.cpp.o.d"
  "gap_filling_test"
  "gap_filling_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gap_filling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
