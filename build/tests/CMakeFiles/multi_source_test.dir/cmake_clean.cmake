file(REMOVE_RECURSE
  "CMakeFiles/multi_source_test.dir/multi_source_test.cpp.o"
  "CMakeFiles/multi_source_test.dir/multi_source_test.cpp.o.d"
  "multi_source_test"
  "multi_source_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_source_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
