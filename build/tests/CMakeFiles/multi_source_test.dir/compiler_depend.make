# Empty compiler generated dependencies file for multi_source_test.
# This may be replaced when dependencies are built.
