file(REMOVE_RECURSE
  "CMakeFiles/fault_plan_test.dir/fault_plan_test.cpp.o"
  "CMakeFiles/fault_plan_test.dir/fault_plan_test.cpp.o.d"
  "fault_plan_test"
  "fault_plan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
