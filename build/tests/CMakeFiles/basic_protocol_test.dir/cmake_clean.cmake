file(REMOVE_RECURSE
  "CMakeFiles/basic_protocol_test.dir/basic_protocol_test.cpp.o"
  "CMakeFiles/basic_protocol_test.dir/basic_protocol_test.cpp.o.d"
  "basic_protocol_test"
  "basic_protocol_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/basic_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
