# Empty dependencies file for basic_protocol_test.
# This may be replaced when dependencies are built.
