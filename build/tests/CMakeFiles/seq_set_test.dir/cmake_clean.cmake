file(REMOVE_RECURSE
  "CMakeFiles/seq_set_test.dir/seq_set_test.cpp.o"
  "CMakeFiles/seq_set_test.dir/seq_set_test.cpp.o.d"
  "seq_set_test"
  "seq_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
