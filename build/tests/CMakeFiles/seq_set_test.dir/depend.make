# Empty dependencies file for seq_set_test.
# This may be replaced when dependencies are built.
