# Empty dependencies file for attachment_test.
# This may be replaced when dependencies are built.
