file(REMOVE_RECURSE
  "CMakeFiles/attachment_test.dir/attachment_test.cpp.o"
  "CMakeFiles/attachment_test.dir/attachment_test.cpp.o.d"
  "attachment_test"
  "attachment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attachment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
