# Empty dependencies file for ordered_delivery_test.
# This may be replaced when dependencies are built.
