file(REMOVE_RECURSE
  "CMakeFiles/ordered_delivery_test.dir/ordered_delivery_test.cpp.o"
  "CMakeFiles/ordered_delivery_test.dir/ordered_delivery_test.cpp.o.d"
  "ordered_delivery_test"
  "ordered_delivery_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordered_delivery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
