# Empty dependencies file for host_state_test.
# This may be replaced when dependencies are built.
