file(REMOVE_RECURSE
  "CMakeFiles/host_state_test.dir/host_state_test.cpp.o"
  "CMakeFiles/host_state_test.dir/host_state_test.cpp.o.d"
  "host_state_test"
  "host_state_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
