# Empty compiler generated dependencies file for gossip_test.
# This may be replaced when dependencies are built.
