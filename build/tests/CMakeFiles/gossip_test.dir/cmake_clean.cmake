file(REMOVE_RECURSE
  "CMakeFiles/gossip_test.dir/gossip_test.cpp.o"
  "CMakeFiles/gossip_test.dir/gossip_test.cpp.o.d"
  "gossip_test"
  "gossip_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
