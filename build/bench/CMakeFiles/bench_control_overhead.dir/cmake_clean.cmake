file(REMOVE_RECURSE
  "CMakeFiles/bench_control_overhead.dir/bench_control_overhead.cpp.o"
  "CMakeFiles/bench_control_overhead.dir/bench_control_overhead.cpp.o.d"
  "bench_control_overhead"
  "bench_control_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_control_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
