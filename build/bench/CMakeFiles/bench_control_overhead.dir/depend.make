# Empty dependencies file for bench_control_overhead.
# This may be replaced when dependencies are built.
