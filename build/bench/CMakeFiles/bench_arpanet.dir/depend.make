# Empty dependencies file for bench_arpanet.
# This may be replaced when dependencies are built.
