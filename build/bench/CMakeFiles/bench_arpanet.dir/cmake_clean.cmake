file(REMOVE_RECURSE
  "CMakeFiles/bench_arpanet.dir/bench_arpanet.cpp.o"
  "CMakeFiles/bench_arpanet.dir/bench_arpanet.cpp.o.d"
  "bench_arpanet"
  "bench_arpanet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_arpanet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
