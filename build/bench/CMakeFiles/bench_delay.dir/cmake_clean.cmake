file(REMOVE_RECURSE
  "CMakeFiles/bench_delay.dir/bench_delay.cpp.o"
  "CMakeFiles/bench_delay.dir/bench_delay.cpp.o.d"
  "bench_delay"
  "bench_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
