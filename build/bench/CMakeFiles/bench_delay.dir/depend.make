# Empty dependencies file for bench_delay.
# This may be replaced when dependencies are built.
