file(REMOVE_RECURSE
  "CMakeFiles/bench_fig31.dir/bench_fig31.cpp.o"
  "CMakeFiles/bench_fig31.dir/bench_fig31.cpp.o.d"
  "bench_fig31"
  "bench_fig31.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig31.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
