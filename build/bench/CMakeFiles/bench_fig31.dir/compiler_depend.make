# Empty compiler generated dependencies file for bench_fig31.
# This may be replaced when dependencies are built.
