file(REMOVE_RECURSE
  "CMakeFiles/bench_fig41.dir/bench_fig41.cpp.o"
  "CMakeFiles/bench_fig41.dir/bench_fig41.cpp.o.d"
  "bench_fig41"
  "bench_fig41.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig41.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
