# Empty compiler generated dependencies file for bench_fig41.
# This may be replaced when dependencies are built.
