# Empty compiler generated dependencies file for bench_cluster_knowledge.
# This may be replaced when dependencies are built.
