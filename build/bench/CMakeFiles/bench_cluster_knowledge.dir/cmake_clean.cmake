file(REMOVE_RECURSE
  "CMakeFiles/bench_cluster_knowledge.dir/bench_cluster_knowledge.cpp.o"
  "CMakeFiles/bench_cluster_knowledge.dir/bench_cluster_knowledge.cpp.o.d"
  "bench_cluster_knowledge"
  "bench_cluster_knowledge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cluster_knowledge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
