# Empty compiler generated dependencies file for bench_fig32.
# This may be replaced when dependencies are built.
