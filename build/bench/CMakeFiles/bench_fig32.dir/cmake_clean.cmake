file(REMOVE_RECURSE
  "CMakeFiles/bench_fig32.dir/bench_fig32.cpp.o"
  "CMakeFiles/bench_fig32.dir/bench_fig32.cpp.o.d"
  "bench_fig32"
  "bench_fig32.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
