# Empty dependencies file for wan_outage_drill.
# This may be replaced when dependencies are built.
