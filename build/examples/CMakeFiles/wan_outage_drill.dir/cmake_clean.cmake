file(REMOVE_RECURSE
  "CMakeFiles/wan_outage_drill.dir/wan_outage_drill.cpp.o"
  "CMakeFiles/wan_outage_drill.dir/wan_outage_drill.cpp.o.d"
  "wan_outage_drill"
  "wan_outage_drill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_outage_drill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
