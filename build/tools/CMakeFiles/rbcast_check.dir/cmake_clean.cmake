file(REMOVE_RECURSE
  "CMakeFiles/rbcast_check.dir/rbcast_check.cpp.o"
  "CMakeFiles/rbcast_check.dir/rbcast_check.cpp.o.d"
  "rbcast_check"
  "rbcast_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbcast_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
