# Empty dependencies file for rbcast_check.
# This may be replaced when dependencies are built.
