file(REMOVE_RECURSE
  "CMakeFiles/rbcast_sim.dir/rbcast_sim.cpp.o"
  "CMakeFiles/rbcast_sim.dir/rbcast_sim.cpp.o.d"
  "rbcast_sim"
  "rbcast_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbcast_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
