# Empty dependencies file for rbcast_sim.
# This may be replaced when dependencies are built.
